package fault

import (
	"errors"
	"io"
	"net"
	"os"
	"path/filepath"
	"sync"
	"syscall"
	"testing"

	"entangled/internal/db"
	"entangled/internal/eq"
)

func TestInjectorAfterCountSchedule(t *testing.T) {
	boom := errors.New("boom")
	inj := NewInjector(1, Rule{Op: OpSync, Path: "wal-", After: 2, Count: 2, Fault: Fault{Err: boom}})
	var got []bool
	for i := 0; i < 6; i++ {
		got = append(got, inj.Decide(OpSync, "store/wal-000001.log").Err != nil)
	}
	want := []bool{false, false, true, true, false, false}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("op %d: fired=%v, want %v (schedule %v)", i, got[i], want[i], got)
		}
	}
	if !inj.Exhausted() {
		t.Fatalf("count-bounded rule should be exhausted after firing twice")
	}
	ops, faults := inj.Stats()
	if ops != 6 || faults != 2 {
		t.Fatalf("stats = (%d ops, %d faults), want (6, 2)", ops, faults)
	}
}

func TestInjectorPathFilterAndOpFilter(t *testing.T) {
	inj := NewInjector(1, Rule{Op: OpWrite, Path: "sessions/", Count: 1, Fault: Fault{Err: errors.New("x")}})
	if inj.Decide(OpSync, "sessions/s1.wal").Err != nil {
		t.Fatalf("wrong op must not match")
	}
	if inj.Decide(OpWrite, "store/wal-000001.log").Err != nil {
		t.Fatalf("wrong path must not match")
	}
	if inj.Decide(OpWrite, "sessions/s1.wal").Err == nil {
		t.Fatalf("matching op+path must fire")
	}
}

func TestInjectorSeededProbDeterministic(t *testing.T) {
	fire := func(seed int64) []bool {
		inj := NewInjector(seed, Rule{Op: OpQuery, Prob: 0.5, Fault: Fault{Err: errors.New("x")}})
		var out []bool
		for i := 0; i < 32; i++ {
			out = append(out, inj.Decide(OpQuery, "solve").Err != nil)
		}
		return out
	}
	a, b := fire(42), fire(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at op %d", i)
		}
	}
}

func TestNilInjectorAndDisarm(t *testing.T) {
	var nilInj *Injector
	if nilInj.Decide(OpWrite, "x").Err != nil {
		t.Fatalf("nil injector must not inject")
	}
	if !nilInj.Exhausted() {
		t.Fatalf("nil injector reports exhausted")
	}
	inj := NewInjector(1, Rule{Op: OpWrite, Fault: Fault{Err: errors.New("x")}})
	inj.Disarm()
	if inj.Decide(OpWrite, "x").Err != nil {
		t.Fatalf("disarmed injector must not inject")
	}
	inj.Arm()
	if inj.Decide(OpWrite, "x").Err == nil {
		t.Fatalf("re-armed injector must inject")
	}
}

func TestFaultFSInjectsAndWrapsSentinel(t *testing.T) {
	dir := t.TempDir()
	inj := NewInjector(1,
		Rule{Op: OpSync, After: 0, Count: 1, Fault: Fault{Err: syscall.EIO}},
		Rule{Op: OpRename, Count: 1, Fault: Fault{Err: syscall.ENOSPC}},
	)
	fsys := NewFS(OS, inj)
	f, err := fsys.OpenFile(filepath.Join(dir, "a.log"), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	err = f.Sync()
	if !errors.Is(err, ErrInjected) || !errors.Is(err, syscall.EIO) {
		t.Fatalf("sync error = %v, want wrapped ErrInjected+EIO", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("rule exhausted, sync should pass: %v", err)
	}
	f.Close()
	err = fsys.Rename(filepath.Join(dir, "a.log"), filepath.Join(dir, "b.log"))
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("rename error = %v, want ENOSPC", err)
	}
	if err := fsys.Rename(filepath.Join(dir, "a.log"), filepath.Join(dir, "b.log")); err != nil {
		t.Fatalf("second rename should pass: %v", err)
	}
}

func TestFaultFSTornWrite(t *testing.T) {
	dir := t.TempDir()
	inj := NewInjector(1, Rule{Op: OpWrite, Count: 1, Fault: Fault{Err: syscall.EIO, Torn: 3}})
	fsys := NewFS(OS, inj)
	path := filepath.Join(dir, "torn.log")
	f, err := fsys.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	n, err := f.Write([]byte("0123456789"))
	if err == nil {
		t.Fatalf("torn write must fail")
	}
	if n != 3 {
		t.Fatalf("torn write landed %d bytes, want 3", n)
	}
	f.Close()
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "012" {
		t.Fatalf("file holds %q, want the 3-byte prefix", got)
	}
}

func TestOSSyncDirPropagates(t *testing.T) {
	if err := OS.SyncDir(t.TempDir()); err != nil {
		t.Fatalf("syncing a real directory: %v", err)
	}
	if err := OS.SyncDir(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatalf("syncing a missing directory must error")
	}
}

// echoPair runs a one-connection echo server through a fault listener
// and returns the client side.
func echoPair(t *testing.T, inj *Injector) net.Conn {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fl := NewListener(ln, inj)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c, err := fl.Accept()
		if err != nil {
			return
		}
		go func() {
			defer c.Close()
			io.Copy(c, c)
		}()
	}()
	c, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close(); ln.Close(); wg.Wait() })
	return c
}

func TestConnCorruptFlipsExactlyOneByte(t *testing.T) {
	inj := NewInjector(1, Rule{Op: OpConnWrite, Count: 1, Fault: Fault{Corrupt: true}})
	c := echoPair(t, inj)
	msg := []byte("abcdefgh")
	if _, err := c.Write(msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(c, got); err != nil {
		t.Fatal(err)
	}
	// The server's echo write is corrupted exactly once.
	diff := 0
	for i := range msg {
		if got[i] != msg[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("%d bytes differ, want exactly 1 (got %q)", diff, got)
	}
}

func TestConnResetFailsCall(t *testing.T) {
	inj := NewInjector(1, Rule{Op: OpConnRead, Count: 1, Fault: Fault{Err: syscall.ECONNRESET}})
	c := echoPair(t, inj)
	if _, err := c.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	// The server-side read is injected: its conn closes, so the client
	// read observes EOF/reset rather than the echo.
	buf := make([]byte, 4)
	if _, err := io.ReadFull(c, buf); err == nil {
		t.Fatalf("expected the echo to be cut by the injected reset")
	}
}

type countingStore struct {
	db.Store
	calls int
}

func (s *countingStore) Satisfiable(body []eq.Atom) (bool, error) {
	s.calls++
	return true, nil
}

func TestFaultStoreInjectsMidPlan(t *testing.T) {
	boom := errors.New("disk on fire")
	inner := &countingStore{}
	inj := NewInjector(1, Rule{Op: OpQuery, Path: "satisfiable", After: 2, Count: 1, Fault: Fault{Err: boom}})
	s := NewStore(inner, inj)
	for i := 0; i < 2; i++ {
		if _, err := s.Satisfiable(nil); err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
	}
	if _, err := s.Satisfiable(nil); !errors.Is(err, boom) || !errors.Is(err, ErrInjected) {
		t.Fatalf("3rd query error = %v, want injected boom", err)
	}
	if _, err := s.Satisfiable(nil); err != nil {
		t.Fatalf("4th query should pass: %v", err)
	}
	if inner.calls != 3 {
		t.Fatalf("inner saw %d calls, want 3 (injected failure never reaches it)", inner.calls)
	}
}
