package fault

import (
	"net"
	"time"
)

// NewListener wraps a listener so every accepted connection goes
// through the injector. An OpAccept fault closes the fresh connection
// immediately (a reset at accept) instead of failing Accept — an
// Accept error would kill the server's accept loop, which is a
// different failure than the flaky network this models.
func NewListener(inner net.Listener, inj *Injector) net.Listener {
	return &faultListener{Listener: inner, inj: inj}
}

type faultListener struct {
	net.Listener
	inj *Injector
}

func (l *faultListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	addr := c.RemoteAddr().String()
	if f := l.inj.Decide(OpAccept, addr); f.Err != nil {
		if f.Delay > 0 {
			time.Sleep(f.Delay)
		}
		c.Close()
	}
	return &Conn{Conn: c, name: addr, inj: l.inj}, nil
}

// Conn injects network misbehavior into one connection: stalls
// (Delay), drops and resets (Err closes the conn and fails the call),
// torn writes (a frame prefix reaches the peer before the cut), and
// silent byte corruption (Corrupt flips one byte and delivers the rest
// intact — TCP checksums won't catch it; the protocol's CRC must).
type Conn struct {
	net.Conn
	name string
	inj  *Injector
}

// NewConn wraps a single connection (client-side injection).
func NewConn(inner net.Conn, inj *Injector) *Conn {
	return &Conn{Conn: inner, name: inner.RemoteAddr().String(), inj: inj}
}

func (c *Conn) Read(p []byte) (int, error) {
	f := c.inj.Decide(OpConnRead, c.name)
	if f.Delay > 0 {
		time.Sleep(f.Delay)
	}
	if f.Err != nil {
		c.Conn.Close()
		return 0, injected(Fault{Err: f.Err}, OpConnRead, c.name)
	}
	n, err := c.Conn.Read(p)
	if f.Corrupt && n > 0 {
		p[n-1] ^= 0x80
	}
	return n, err
}

func (c *Conn) Write(p []byte) (int, error) {
	f := c.inj.Decide(OpConnWrite, c.name)
	if f.Delay > 0 {
		time.Sleep(f.Delay)
	}
	switch {
	case f.Err != nil && f.Torn > 0:
		n := f.Torn
		if n > len(p) {
			n = len(p)
		}
		written, _ := c.Conn.Write(p[:n])
		c.Conn.Close()
		return written, injected(Fault{Err: f.Err}, OpConnWrite, c.name)
	case f.Err != nil:
		c.Conn.Close()
		return 0, injected(Fault{Err: f.Err}, OpConnWrite, c.name)
	case f.Corrupt && len(p) > 0:
		// Corrupt a copy: the caller's buffer is reused for the next
		// frame and must not carry the flipped byte forward.
		q := make([]byte, len(p))
		copy(q, p)
		q[len(q)/2] ^= 0x01
		return c.Conn.Write(q)
	}
	return c.Conn.Write(p)
}
