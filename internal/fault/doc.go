// Package fault is a deterministic fault-injection layer for the three
// seams the service already has: the filesystem under internal/persist
// (FS/File — injectable write, sync, and rename errors, torn writes,
// ENOSPC, latency), the network under both protocols (Listener/Conn —
// drops, resets, stalls, byte corruption for the CRC frames to catch),
// and the query path (Store — injected errors and stalls mid-plan).
//
// Faults come from an Injector: an ordered list of rules, each matching
// an operation kind and a path substring, firing after a skip count,
// for a bounded number of times, optionally gated by a seeded
// probability. Counted rules make a fault schedule reproducible — the
// same op sequence always hits the same faults — which is what lets
// the chaos soak in internal/server assert exact degraded-mode
// transitions. A nil *Injector injects nothing, so production code can
// thread the wrappers unconditionally; fault.OS is the passthrough
// filesystem used when no faults are wanted.
package fault
