package fault

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"syscall"
	"time"
)

// File is the slice of *os.File the persistence layer needs: append,
// replay, truncate, fsync.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	Seek(offset int64, whence int) (int64, error)
	Sync() error
	Truncate(size int64) error
}

// FS is the filesystem seam persist.Backend writes through. OS is the
// real thing; NewFS wraps any FS with an Injector. SyncDir is a
// first-class operation because directory fsync after rename is
// exactly the crash window snapshot compaction must close.
type FS interface {
	OpenFile(name string, flag int, perm fs.FileMode) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	Truncate(name string, size int64) error
	MkdirAll(path string, perm fs.FileMode) error
	ReadDir(name string) ([]fs.DirEntry, error)
	ReadFile(name string) ([]byte, error)
	WriteFile(name string, data []byte, perm fs.FileMode) error
	SyncDir(name string) error
}

// OS is the passthrough FS over the real filesystem.
var OS FS = osFS{}

type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}
func (osFS) Rename(oldpath, newpath string) error   { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error               { return os.Remove(name) }
func (osFS) Truncate(name string, size int64) error { return os.Truncate(name, size) }
func (osFS) MkdirAll(path string, perm fs.FileMode) error {
	return os.MkdirAll(path, perm)
}
func (osFS) ReadDir(name string) ([]fs.DirEntry, error) { return os.ReadDir(name) }
func (osFS) ReadFile(name string) ([]byte, error)       { return os.ReadFile(name) }
func (osFS) WriteFile(name string, data []byte, perm fs.FileMode) error {
	return os.WriteFile(name, data, perm)
}

// SyncDir fsyncs a directory so renames and creates inside it are
// durable. Filesystems that refuse to sync directories (EINVAL or
// ENOTSUP) have nothing to flush and report success; every other error
// propagates — a failed dir sync after rename is a real lost-rename
// crash window, not noise.
func (osFS) SyncDir(name string) error {
	d, err := os.Open(name)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if errors.Is(err, syscall.EINVAL) || errors.Is(err, syscall.ENOTSUP) {
		return nil
	}
	return err
}

// NewFS wraps inner so every operation consults the injector first. A
// nil injector makes the wrapper a passthrough.
func NewFS(inner FS, inj *Injector) FS {
	return &faultFS{inner: inner, inj: inj}
}

type faultFS struct {
	inner FS
	inj   *Injector
}

// injected stalls for the fault's delay and renders its error.
func injected(f Fault, op Op, name string) error {
	if f.Delay > 0 {
		time.Sleep(f.Delay)
	}
	if f.Err == nil {
		return nil
	}
	return fmt.Errorf("%w: %s %s: %w", ErrInjected, op, name, f.Err)
}

func (w *faultFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	if err := injected(w.inj.Decide(OpOpen, name), OpOpen, name); err != nil {
		return nil, err
	}
	f, err := w.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: f, name: name, inj: w.inj}, nil
}

func (w *faultFS) Rename(oldpath, newpath string) error {
	if err := injected(w.inj.Decide(OpRename, oldpath), OpRename, oldpath); err != nil {
		return err
	}
	return w.inner.Rename(oldpath, newpath)
}

func (w *faultFS) Remove(name string) error {
	if err := injected(w.inj.Decide(OpRemove, name), OpRemove, name); err != nil {
		return err
	}
	return w.inner.Remove(name)
}

func (w *faultFS) Truncate(name string, size int64) error {
	if err := injected(w.inj.Decide(OpTruncate, name), OpTruncate, name); err != nil {
		return err
	}
	return w.inner.Truncate(name, size)
}

func (w *faultFS) MkdirAll(path string, perm fs.FileMode) error {
	if err := injected(w.inj.Decide(OpMkdir, path), OpMkdir, path); err != nil {
		return err
	}
	return w.inner.MkdirAll(path, perm)
}

func (w *faultFS) ReadDir(name string) ([]fs.DirEntry, error) {
	if err := injected(w.inj.Decide(OpReadDir, name), OpReadDir, name); err != nil {
		return nil, err
	}
	return w.inner.ReadDir(name)
}

func (w *faultFS) ReadFile(name string) ([]byte, error) {
	if err := injected(w.inj.Decide(OpRead, name), OpRead, name); err != nil {
		return nil, err
	}
	return w.inner.ReadFile(name)
}

func (w *faultFS) WriteFile(name string, data []byte, perm fs.FileMode) error {
	if err := injected(w.inj.Decide(OpWrite, name), OpWrite, name); err != nil {
		return err
	}
	return w.inner.WriteFile(name, data, perm)
}

func (w *faultFS) SyncDir(name string) error {
	if err := injected(w.inj.Decide(OpSyncDir, name), OpSyncDir, name); err != nil {
		return err
	}
	return w.inner.SyncDir(name)
}

// faultFile intercepts the per-handle write path: torn writes land a
// prefix of the payload in the real file before failing, which is the
// on-disk shape a power cut mid-write leaves for replay to truncate.
type faultFile struct {
	File
	name string
	inj  *Injector
}

func (f *faultFile) Write(p []byte) (int, error) {
	d := f.inj.Decide(OpWrite, f.name)
	if d.Err != nil && d.Torn > 0 {
		n := d.Torn
		if n > len(p) {
			n = len(p)
		}
		written, werr := f.File.Write(p[:n])
		err := injected(d, OpWrite, f.name)
		if werr != nil {
			err = werr
		}
		return written, err
	}
	if err := injected(d, OpWrite, f.name); err != nil {
		return 0, err
	}
	return f.File.Write(p)
}

func (f *faultFile) Read(p []byte) (int, error) {
	if err := injected(f.inj.Decide(OpRead, f.name), OpRead, f.name); err != nil {
		return 0, err
	}
	return f.File.Read(p)
}

func (f *faultFile) Sync() error {
	if err := injected(f.inj.Decide(OpSync, f.name), OpSync, f.name); err != nil {
		return err
	}
	return f.File.Sync()
}

func (f *faultFile) Truncate(size int64) error {
	if err := injected(f.inj.Decide(OpTruncate, f.name), OpTruncate, f.name); err != nil {
		return err
	}
	return f.File.Truncate(size)
}
