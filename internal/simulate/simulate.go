package simulate

import (
	"fmt"
	"math/rand"
	"strconv"

	"entangled/internal/coord"
	"entangled/internal/db"
	"entangled/internal/eq"
	"entangled/internal/graph"
	"entangled/internal/system"
	"entangled/internal/workload"
)

// Config parameterises a simulation run.
type Config struct {
	// Network is the social structure; a query's coordination partners
	// are sampled from its user's successors. Required.
	Network *graph.Digraph
	// TableRows sizes the queried table (default 1000).
	TableRows int
	// Rounds is the number of simulation rounds (default 50).
	Rounds int
	// ArrivalsPerRound is how many users submit per round (default 5).
	ArrivalsPerRound int
	// CoordProb is the probability that a new request names a partner
	// (default 0.7); with the remaining probability the query is free
	// and coordinates alone.
	CoordProb float64
	// MaxPartners bounds how many successors one request names
	// (default 2).
	MaxPartners int
	// TTL is the number of rounds a request may wait before it expires
	// and is cancelled (default 10).
	TTL int
	// Seed drives all randomness; equal seeds give equal runs.
	Seed int64
}

func (c Config) withDefaults() (Config, error) {
	if c.Network == nil {
		return c, fmt.Errorf("simulate: Config.Network is required")
	}
	if c.TableRows == 0 {
		c.TableRows = 1000
	}
	if c.Rounds == 0 {
		c.Rounds = 50
	}
	if c.ArrivalsPerRound == 0 {
		c.ArrivalsPerRound = 5
	}
	if c.CoordProb == 0 {
		c.CoordProb = 0.7
	}
	if c.MaxPartners == 0 {
		c.MaxPartners = 2
	}
	if c.TTL == 0 {
		c.TTL = 10
	}
	return c, nil
}

// Stats summarises a simulation run.
type Stats struct {
	Rounds       int
	Submitted    int
	Answered     int
	Expired      int
	PendingAtEnd int
	// Batches counts coordination events (one per non-empty answer).
	Batches int
	// MaxBatch is the largest coordinating set answered at once.
	MaxBatch int
	// AvgBatch is the mean coordinating-set size over batches.
	AvgBatch float64
	// AvgWaitRounds is the mean number of rounds answered queries
	// waited (0 = answered on arrival).
	AvgWaitRounds float64
	// MaxPending is the high-water mark of the pending queue.
	MaxPending int
}

// Run executes the simulation and returns its statistics. The run is
// deterministic in Config.Seed.
func Run(cfg Config) (Stats, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return Stats{}, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	inst := db.NewInstance()
	workload.UserTable(inst, cfg.TableRows)
	c := system.New(inst, coord.Options{})

	var st Stats
	st.Rounds = cfg.Rounds
	submittedAt := map[string]int{} // query id -> round
	busy := map[int]bool{}          // users with a pending request (keeps the set safe)
	var totalWait int

	n := cfg.Network.N()
	if n == 0 {
		return st, fmt.Errorf("simulate: empty network")
	}
	seq := 0
	for round := 0; round < cfg.Rounds; round++ {
		// Expire overdue requests.
		for _, q := range c.Pending() {
			if round-submittedAt[q.ID] >= cfg.TTL {
				if c.Cancel(q.ID) {
					st.Expired++
					delete(submittedAt, q.ID)
					busy[userOf(q)] = false
				}
			}
		}
		// New arrivals.
		for a := 0; a < cfg.ArrivalsPerRound; a++ {
			u := rng.Intn(n)
			if busy[u] {
				continue // one active request per user keeps safety
			}
			q := makeQuery(cfg, rng, u, seq)
			seq++
			st.Submitted++
			submittedAt[q.ID] = round
			busy[u] = true
			out, err := c.Submit(q)
			if err != nil {
				return st, err
			}
			if len(out.Coordinated) > 0 {
				st.Batches++
				st.Answered += len(out.Coordinated)
				if len(out.Coordinated) > st.MaxBatch {
					st.MaxBatch = len(out.Coordinated)
				}
				st.AvgBatch += float64(len(out.Coordinated))
				for _, cq := range out.Coordinated {
					totalWait += round - submittedAt[cq.ID]
					delete(submittedAt, cq.ID)
					busy[userOf(cq)] = false
				}
			}
			if p := c.PendingCount(); p > st.MaxPending {
				st.MaxPending = p
			}
		}
	}
	st.PendingAtEnd = c.PendingCount()
	if st.Batches > 0 {
		st.AvgBatch /= float64(st.Batches)
	}
	if st.Answered > 0 {
		st.AvgWaitRounds = float64(totalWait) / float64(st.Answered)
	}
	return st, nil
}

// makeQuery builds user u's request: head R(U_u, x), a satisfiable
// body, and — with probability CoordProb — postconditions naming up to
// MaxPartners distinct network successors.
func makeQuery(cfg Config, rng *rand.Rand, u, seq int) eq.Query {
	q := eq.Query{
		ID:   "r" + strconv.Itoa(seq) + "-u" + strconv.Itoa(u),
		Head: []eq.Atom{eq.NewAtom("R", eq.C(workload.User(u)), eq.V("x"))},
		Body: []eq.Atom{eq.NewAtom("T", eq.V("x"), eq.C(eq.Value("c"+strconv.Itoa(rng.Intn(cfg.TableRows)))))},
	}
	succ := cfg.Network.Succ(u)
	if len(succ) == 0 || rng.Float64() >= cfg.CoordProb {
		return q
	}
	want := 1 + rng.Intn(cfg.MaxPartners)
	perm := rng.Perm(len(succ))
	for k := 0; k < want && k < len(succ); k++ {
		v := succ[perm[k]]
		q.Post = append(q.Post, eq.NewAtom("R", eq.C(workload.User(v)), eq.V("y"+strconv.Itoa(k))))
	}
	return q
}

// userOf recovers the submitting user index from a simulator query.
func userOf(q eq.Query) int {
	name := string(q.Head[0].Args[0].Const())
	u, _ := strconv.Atoi(name[1:]) // names are "U<i>"
	return u
}
