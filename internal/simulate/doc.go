// Package simulate runs discrete-round simulations of a population of
// users submitting entangled queries to the online coordination module.
// The paper motivates entangled queries with continuously arriving
// social coordination requests (§1, §7 "on-line setting"); this package
// provides that setting as an executable model: users on a social
// network submit requests over time, the Youtopia-style coordinator
// answers whatever components complete, and requests that wait too long
// expire. The simulator collects the statistics a deployment would care
// about — answer rate, waiting time, coordination batch sizes.
package simulate
