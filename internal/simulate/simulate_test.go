package simulate

import (
	"math/rand"
	"testing"

	"entangled/internal/netgen"
)

func TestRunRequiresNetwork(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Fatal("missing network must fail")
	}
}

func TestRunDeterministic(t *testing.T) {
	g := netgen.BarabasiAlbert(40, 2, rand.New(rand.NewSource(1)))
	cfg := Config{Network: g, Rounds: 30, Seed: 42}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same seed must give same stats:\n%+v\n%+v", a, b)
	}
}

func TestRunAccounting(t *testing.T) {
	g := netgen.BarabasiAlbert(60, 2, rand.New(rand.NewSource(2)))
	st, err := Run(Config{Network: g, Rounds: 60, ArrivalsPerRound: 8, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	// Conservation: every submission is answered, expired, or pending.
	if st.Submitted != st.Answered+st.Expired+st.PendingAtEnd {
		t.Fatalf("accounting broken: %+v", st)
	}
	if st.Submitted == 0 || st.Answered == 0 {
		t.Fatalf("simulation should make progress: %+v", st)
	}
	if st.AvgWaitRounds < 0 || st.MaxBatch < 1 {
		t.Fatalf("stats out of range: %+v", st)
	}
	if st.AvgBatch < 1 || float64(st.MaxBatch) < st.AvgBatch {
		t.Fatalf("batch stats inconsistent: %+v", st)
	}
}

func TestFreeRidersAnswerImmediately(t *testing.T) {
	// With CoordProb effectively zero every request coordinates alone on
	// arrival: no waiting, no expiry, batch size 1.
	g := netgen.Complete(10)
	st, err := Run(Config{Network: g, Rounds: 20, CoordProb: 1e-12, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if st.Expired != 0 || st.PendingAtEnd != 0 {
		t.Fatalf("free riders never wait: %+v", st)
	}
	if st.Answered != st.Submitted {
		t.Fatalf("all answered: %+v", st)
	}
	if st.MaxBatch != 1 || st.AvgWaitRounds != 0 {
		t.Fatalf("batches of one, no waiting: %+v", st)
	}
}

func TestChainNetworkStarves(t *testing.T) {
	// On a chain network with always-coordinate requests, many requests
	// point at retired or absent partners and expire; the TTL machinery
	// must reclaim them.
	g := netgen.Chain(30)
	st, err := Run(Config{Network: g, Rounds: 50, CoordProb: 0.99, TTL: 5, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if st.Expired == 0 {
		t.Fatalf("expected expiries on a chain: %+v", st)
	}
	if st.Submitted != st.Answered+st.Expired+st.PendingAtEnd {
		t.Fatalf("accounting broken: %+v", st)
	}
}

func TestDefaultsApplied(t *testing.T) {
	cfg, err := Config{Network: netgen.Complete(3)}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Rounds != 50 || cfg.TTL != 10 || cfg.MaxPartners != 2 {
		t.Fatalf("defaults: %+v", cfg)
	}
}
