package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// ErrMalformed is the sentinel wrapped by every decode failure; match
// with errors.Is. Decoding never panics and never allocates more than
// the input could justify — a hostile length prefix fails the bounds
// check before any allocation happens.
var ErrMalformed = errors.New("wire: malformed message")

// DecodeError reports where a payload stopped being decodable.
type DecodeError struct {
	// Offset is the byte position in the payload at which decoding
	// failed; every byte before it parsed cleanly.
	Offset int
	// Reason says what failed.
	Reason string
}

func (e *DecodeError) Error() string {
	return fmt.Sprintf("wire: malformed message at offset %d: %s", e.Offset, e.Reason)
}

// Is makes errors.Is(err, ErrMalformed) true for every decode error.
func (e *DecodeError) Is(target error) bool { return target == ErrMalformed }

// Enc is an append-only encoder over a byte slice. The zero value is
// ready to use; Reset with a pooled buffer to reuse allocations across
// messages (see GetBuf/PutBuf).
type Enc struct {
	b []byte
}

// Reset points the encoder at buf (length reset to zero, capacity
// kept).
func (e *Enc) Reset(buf []byte) { e.b = buf[:0] }

// Bytes returns the encoded payload.
func (e *Enc) Bytes() []byte { return e.b }

// Uvarint appends an unsigned varint.
func (e *Enc) Uvarint(x uint64) { e.b = binary.AppendUvarint(e.b, x) }

// Int appends a signed int as a zigzag varint.
func (e *Enc) Int(x int) { e.Int64(int64(x)) }

// Int64 appends a signed 64-bit int as a zigzag varint.
func (e *Enc) Int64(x int64) { e.b = binary.AppendVarint(e.b, x) }

// Bool appends one byte, 0 or 1.
func (e *Enc) Bool(v bool) {
	if v {
		e.b = append(e.b, 1)
	} else {
		e.b = append(e.b, 0)
	}
}

// Byte appends one raw byte.
func (e *Enc) Byte(v byte) { e.b = append(e.b, v) }

// Raw appends bytes verbatim, no length prefix — for splicing an
// already-encoded payload (forward bodies, relayed replies) into a
// frame.
func (e *Enc) Raw(b []byte) { e.b = append(e.b, b...) }

// String appends a length-prefixed string.
func (e *Enc) String(s string) {
	e.Uvarint(uint64(len(s)))
	e.b = append(e.b, s...)
}

// Float appends a float64 as 8 fixed little-endian bytes.
func (e *Enc) Float(f float64) {
	e.b = binary.LittleEndian.AppendUint64(e.b, math.Float64bits(f))
}

// Dec is a bounds-checked decoder over a payload. Errors are sticky:
// after the first failure every read returns the zero value and Err
// reports the failure, so decode code reads linearly without per-field
// error plumbing.
type Dec struct {
	b   []byte
	off int
	err *DecodeError
}

// NewDec returns a decoder over payload.
func NewDec(payload []byte) *Dec { return &Dec{b: payload} }

// Err returns the first decode failure, or nil.
func (d *Dec) Err() error {
	if d.err == nil {
		return nil
	}
	return d.err
}

// Remaining returns the number of unread bytes.
func (d *Dec) Remaining() int { return len(d.b) - d.off }

// Finish fails the decode if any input is left over — a valid message
// consumes its payload exactly.
func (d *Dec) Finish() error {
	if d.err == nil && d.off != len(d.b) {
		d.fail("trailing garbage")
	}
	return d.Err()
}

func (d *Dec) fail(reason string) {
	if d.err == nil {
		d.err = &DecodeError{Offset: d.off, Reason: reason}
	}
}

// Uvarint reads an unsigned varint.
func (d *Dec) Uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	x, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.fail("bad uvarint")
		return 0
	}
	d.off += n
	return x
}

// Int reads a zigzag varint as an int.
func (d *Dec) Int() int { return int(d.Int64()) }

// Int64 reads a zigzag varint.
func (d *Dec) Int64() int64 {
	if d.err != nil {
		return 0
	}
	x, n := binary.Varint(d.b[d.off:])
	if n <= 0 {
		d.fail("bad varint")
		return 0
	}
	d.off += n
	return x
}

// Bool reads one byte that must be 0 or 1.
func (d *Dec) Bool() bool {
	switch d.Byte() {
	case 0:
		return false
	case 1:
		return true
	default:
		d.fail("bad bool")
		return false
	}
}

// Byte reads one raw byte.
func (d *Dec) Byte() byte {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.b) {
		d.fail("truncated")
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

// String reads a length-prefixed string. The length is validated
// against the remaining payload before any allocation.
func (d *Dec) String() string {
	n := d.Uvarint()
	if d.err != nil {
		return ""
	}
	if n > uint64(d.Remaining()) {
		d.fail(fmt.Sprintf("string length %d exceeds remaining %d bytes", n, d.Remaining()))
		return ""
	}
	s := string(d.b[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}

// Float reads 8 fixed little-endian bytes as a float64.
func (d *Dec) Float() float64 {
	if d.err != nil {
		return 0
	}
	if d.Remaining() < 8 {
		d.fail("truncated float")
		return 0
	}
	f := math.Float64frombits(binary.LittleEndian.Uint64(d.b[d.off:]))
	d.off += 8
	return f
}

// Len reads a collection length and validates it against the remaining
// payload assuming each element costs at least minBytes — so a hostile
// length can never drive a large allocation.
func (d *Dec) Len(minBytes int) int {
	n := d.Uvarint()
	if d.err != nil {
		return 0
	}
	if minBytes < 1 {
		minBytes = 1
	}
	if n > uint64(d.Remaining()/minBytes) {
		d.fail(fmt.Sprintf("collection of %d elements exceeds remaining %d bytes", n, d.Remaining()))
		return 0
	}
	return int(n)
}
