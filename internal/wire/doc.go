// Package wire is the coordination service's binary protocol: a
// length-prefixed, CRC-framed codec over one persistent TCP connection,
// built to kill the ~4x per-request overhead the HTTP/JSON path
// measured in BENCH_PR5.json (JSON encode/decode plus per-batch TCP
// round trips).
//
// A connection starts with the 4-byte Magic preamble, then carries
// frames in both directions. Each frame is the WAL discipline from
// internal/persist — 4-byte little-endian payload length, 4-byte
// CRC-32 (IEEE) of the payload, payload — with the payload holding a
// one-byte message Kind, a uvarint pipelining id, and a kind-specific
// body. Requests pipeline: clients issue any number of concurrent
// calls over one connection, the server answers each with a KindReply
// frame echoing its id, and replies resolve out of order as work
// finishes. KindPush frames (id 0) flow server-to-client without a
// request: a parked unsafe arrival that a later departure admitted
// notifies subscribed connections instead of being polled for.
//
// The codec encodes exactly the internal/api DTO schema the HTTP/JSON
// protocol serves, and its decoders reproduce the JSON codec's
// nil-versus-empty semantics, so a payload decoded from either
// protocol is DeepEqual to the other's — the cross-codec equivalence
// tests in internal/server pin that. Encoders are deterministic (maps
// in sorted key order): identical DTOs yield identical frames, pinned
// by golden frame files in testdata/. Encode and decode buffers pool
// (GetBuf/PutBuf), so a busy connection's steady state allocates
// little beyond the decoded DTOs themselves.
//
// Decoding is hostile-input safe: every length is validated against
// the remaining payload before allocation, malformed input yields a
// typed *DecodeError (errors.Is ErrMalformed), and FuzzBinaryDecode
// keeps the no-panic, no-hang property honest.
package wire
