package wire

import (
	"sort"

	"entangled/internal/api"
	"entangled/internal/coord"
	"entangled/internal/eq"
)

// DTO codecs. Every encoder is deterministic (maps are emitted in
// sorted key order), so identical DTOs produce identical frames — the
// golden-frame tests rely on that. Every decoder reproduces the JSON
// codec's nil-versus-empty semantics exactly: fields the JSON encoding
// round-trips as nil (omitempty slices and maps, JSON null) decode to
// nil here too, so a DTO decoded from the binary wire is DeepEqual to
// the same DTO decoded from the HTTP wire.
//
// Slices that are NOT omitempty in the JSON schema use a
// presence-prefixed length (0 = nil, n+1 = n elements), preserving the
// nil/empty distinction the JSON null/[] pair carries; omitempty
// slices and maps normalize empty to nil on encode, the way omitempty
// drops them from the JSON body.

// putSlice appends a presence-prefixed length: 0 for nil, n+1 for n
// elements.
func putSlice[T any](e *Enc, s []T) int {
	if s == nil {
		e.Uvarint(0)
		return 0
	}
	e.Uvarint(uint64(len(s)) + 1)
	return len(s)
}

// getSlice reads a presence-prefixed length: -1 for nil, else the
// element count (validated against the remaining payload at minBytes
// per element).
func getSlice(d *Dec, minBytes int) int {
	n := d.Uvarint()
	if d.err != nil {
		return -1
	}
	if n == 0 {
		return -1
	}
	n--
	if minBytes < 1 {
		minBytes = 1
	}
	if n > uint64(d.Remaining()/minBytes) {
		d.fail("slice length exceeds remaining bytes")
		return -1
	}
	return int(n)
}

// omitEmpty normalizes an omitempty-tagged slice: JSON drops it when
// empty, so the decoder on the other side sees nil either way.
func omitEmpty[T any](s []T) []T {
	if len(s) == 0 {
		return nil
	}
	return s
}

// --- eq types ---

// PutTerm appends one term.
func PutTerm(e *Enc, t eq.Term) {
	e.Byte(byte(t.Kind))
	e.String(t.Name)
}

// GetTerm reads one term, enforcing the JSON codec's validity rules
// (kind must be const or var; variables need a name).
func GetTerm(d *Dec) eq.Term {
	k := d.Byte()
	name := d.String()
	if d.err != nil {
		return eq.Term{}
	}
	switch eq.TermKind(k) {
	case eq.TermConst:
		return eq.C(eq.Value(name))
	case eq.TermVar:
		if name == "" {
			d.fail("variable term with empty name")
			return eq.Term{}
		}
		return eq.V(name)
	default:
		d.fail("bad term kind")
		return eq.Term{}
	}
}

// PutAtom appends one atom.
func PutAtom(e *Enc, a eq.Atom) {
	e.String(a.Rel)
	n := putSlice(e, a.Args)
	for i := 0; i < n; i++ {
		PutTerm(e, a.Args[i])
	}
}

// GetAtom reads one atom.
func GetAtom(d *Dec) eq.Atom {
	var a eq.Atom
	a.Rel = d.String()
	if d.err == nil && a.Rel == "" {
		d.fail("atom without relation name")
		return eq.Atom{}
	}
	if n := getSlice(d, 2); n >= 0 {
		a.Args = make([]eq.Term, n)
		for i := range a.Args {
			a.Args[i] = GetTerm(d)
		}
	}
	return a
}

func putAtoms(e *Enc, atoms []eq.Atom) {
	n := putSlice(e, atoms)
	for i := 0; i < n; i++ {
		PutAtom(e, atoms[i])
	}
}

func getAtoms(d *Dec) []eq.Atom {
	n := getSlice(d, 2)
	if n < 0 {
		return nil
	}
	atoms := make([]eq.Atom, n)
	for i := range atoms {
		atoms[i] = GetAtom(d)
	}
	return atoms
}

// PutQuery appends one query (Post and Body are omitempty in the JSON
// schema; Head is not).
func PutQuery(e *Enc, q eq.Query) {
	e.String(q.ID)
	putAtoms(e, omitEmpty(q.Post))
	putAtoms(e, q.Head)
	putAtoms(e, omitEmpty(q.Body))
}

// GetQuery reads one query.
func GetQuery(d *Dec) eq.Query {
	var q eq.Query
	q.ID = d.String()
	q.Post = getAtoms(d)
	q.Head = getAtoms(d)
	q.Body = getAtoms(d)
	return q
}

// PutQueries appends a query slice (presence-prefixed).
func PutQueries(e *Enc, qs []eq.Query) {
	n := putSlice(e, qs)
	for i := 0; i < n; i++ {
		PutQuery(e, qs[i])
	}
}

// GetQueries reads a query slice.
func GetQueries(d *Dec) []eq.Query {
	n := getSlice(d, 4)
	if n < 0 {
		return nil
	}
	qs := make([]eq.Query, n)
	for i := range qs {
		qs[i] = GetQuery(d)
	}
	return qs
}

// --- coord types ---

func putInts(e *Enc, xs []int) {
	n := putSlice(e, xs)
	for i := 0; i < n; i++ {
		e.Int(xs[i])
	}
}

func getInts(d *Dec) []int {
	n := getSlice(d, 1)
	if n < 0 {
		return nil
	}
	xs := make([]int, n)
	for i := range xs {
		xs[i] = d.Int()
	}
	return xs
}

// PutResult appends a coordination result. Values is emitted in sorted
// (query index, variable name) order for determinism; an empty map is
// normalized to absent, matching the JSON omitempty behaviour.
func PutResult(e *Enc, r *coord.Result) {
	if r == nil {
		e.Bool(false)
		return
	}
	e.Bool(true)
	putInts(e, r.Set)
	if len(r.Values) == 0 {
		e.Uvarint(0)
	} else {
		e.Uvarint(uint64(len(r.Values)))
		keys := make([]int, 0, len(r.Values))
		for k := range r.Values {
			keys = append(keys, k)
		}
		sort.Ints(keys)
		for _, k := range keys {
			e.Int(k)
			vals := r.Values[k]
			e.Uvarint(uint64(len(vals)))
			names := make([]string, 0, len(vals))
			for name := range vals {
				names = append(names, name)
			}
			sort.Strings(names)
			for _, name := range names {
				e.String(name)
				e.String(string(vals[name]))
			}
		}
	}
	e.Int64(r.DBQueries)
}

// GetResult reads a coordination result (nil when absent).
func GetResult(d *Dec) *coord.Result {
	if !d.Bool() {
		return nil
	}
	var r coord.Result
	r.Set = getInts(d)
	if n := d.Len(2); n > 0 {
		r.Values = make(map[int]map[string]eq.Value, n)
		for i := 0; i < n; i++ {
			k := d.Int()
			m := d.Len(2)
			vals := make(map[string]eq.Value, m)
			for j := 0; j < m; j++ {
				name := d.String()
				vals[name] = eq.Value(d.String())
			}
			if d.err != nil {
				return nil
			}
			r.Values[k] = vals
		}
	}
	r.DBQueries = d.Int64()
	if d.err != nil {
		return nil
	}
	return &r
}

// PutDeltaStats appends incremental event statistics.
func PutDeltaStats(e *Enc, s coord.DeltaStats) {
	e.Int(s.Slot)
	e.Int(s.Components)
	e.Int(s.Dirty)
	e.Int(s.Reused)
	e.Int64(s.DBQueries)
}

// GetDeltaStats reads incremental event statistics.
func GetDeltaStats(d *Dec) coord.DeltaStats {
	return coord.DeltaStats{
		Slot:       d.Int(),
		Components: d.Int(),
		Dirty:      d.Int(),
		Reused:     d.Int(),
		DBQueries:  d.Int64(),
	}
}

// PutTrace appends a coordination trace (nil-safe; Pruned and
// Components are omitempty in the JSON schema, as are ComponentEvent's
// Set, SetSize and Combined).
func PutTrace(e *Enc, tr *coord.Trace) {
	if tr == nil {
		e.Bool(false)
		return
	}
	e.Bool(true)
	pruned := omitEmpty(tr.Pruned)
	n := putSlice(e, pruned)
	for i := 0; i < n; i++ {
		e.Int(pruned[i].Query)
		e.String(pruned[i].Reason)
	}
	comps := omitEmpty(tr.Components)
	n = putSlice(e, comps)
	for i := 0; i < n; i++ {
		c := comps[i]
		putInts(e, c.Members)
		putInts(e, omitEmpty(c.Set))
		e.String(c.Status)
		e.Int(c.SetSize)
		e.String(c.Combined)
	}
}

// GetTrace reads a coordination trace (nil when absent).
func GetTrace(d *Dec) *coord.Trace {
	if !d.Bool() {
		return nil
	}
	var tr coord.Trace
	if n := getSlice(d, 2); n >= 0 {
		tr.Pruned = make([]coord.PruneEvent, n)
		for i := range tr.Pruned {
			tr.Pruned[i] = coord.PruneEvent{Query: d.Int(), Reason: d.String()}
		}
	}
	if n := getSlice(d, 4); n >= 0 {
		tr.Components = make([]coord.ComponentEvent, n)
		for i := range tr.Components {
			tr.Components[i] = coord.ComponentEvent{
				Members:  getInts(d),
				Set:      getInts(d),
				Status:   d.String(),
				SetSize:  d.Int(),
				Combined: d.String(),
			}
		}
	}
	if d.err != nil {
		return nil
	}
	return &tr
}

// --- api types ---

// PutError appends a wire error (nil-safe presence flag).
func PutError(e *Enc, we *api.Error) {
	if we == nil {
		e.Bool(false)
		return
	}
	e.Bool(true)
	e.String(we.Code)
	e.String(we.Message)
	e.String(we.Owner)
	e.Int64(we.RetryAfterMS)
}

// GetError reads a wire error (nil when absent).
func GetError(d *Dec) *api.Error {
	if !d.Bool() {
		return nil
	}
	we := &api.Error{Code: d.String(), Message: d.String(), Owner: d.String(), RetryAfterMS: d.Int64()}
	if d.err != nil {
		return nil
	}
	return we
}

// PutUpdate appends one session update.
func PutUpdate(e *Enc, u api.Update) {
	e.Int(u.Seq)
	e.Bool(u.Admitted)
	e.Bool(u.Parked)
	e.Int(u.TeamSize)
	PutDeltaStats(e, u.Stats)
	e.Int64(u.ElapsedNS)
	PutError(e, u.Error)
}

// GetUpdate reads one session update.
func GetUpdate(d *Dec) api.Update {
	return api.Update{
		Seq:       d.Int(),
		Admitted:  d.Bool(),
		Parked:    d.Bool(),
		TeamSize:  d.Int(),
		Stats:     GetDeltaStats(d),
		ElapsedNS: d.Int64(),
		Error:     GetError(d),
	}
}

// PutTotals appends session totals.
func PutTotals(e *Enc, t api.Totals) {
	e.Int(t.Events)
	e.Int(t.Joins)
	e.Int(t.Leaves)
	e.Int(t.Rejected)
	e.Int(t.Parked)
	e.Int(t.Dirty)
	e.Int(t.Reused)
	e.Int64(t.DBQueries)
}

// GetTotals reads session totals.
func GetTotals(d *Dec) api.Totals {
	return api.Totals{
		Events:    d.Int(),
		Joins:     d.Int(),
		Leaves:    d.Int(),
		Rejected:  d.Int(),
		Parked:    d.Int(),
		Dirty:     d.Int(),
		Reused:    d.Int(),
		DBQueries: d.Int64(),
	}
}

// PutSessionStatus appends a full session status.
func PutSessionStatus(e *Enc, st api.SessionStatus) {
	e.String(st.ID)
	e.Int(st.Live)
	e.Int(st.Parked)
	PutQueries(e, st.Queries)
	PutResult(e, st.Result)
	PutTotals(e, st.Totals)
	PutTrace(e, st.Trace)
	e.Int(st.TeamSize)
}

// GetSessionStatus reads a full session status.
func GetSessionStatus(d *Dec) api.SessionStatus {
	return api.SessionStatus{
		ID:       d.String(),
		Live:     d.Int(),
		Parked:   d.Int(),
		Queries:  GetQueries(d),
		Result:   GetResult(d),
		Totals:   GetTotals(d),
		Trace:    GetTrace(d),
		TeamSize: d.Int(),
	}
}

// PutHealth appends a health report.
func PutHealth(e *Enc, h api.Health) {
	e.String(h.Status)
	e.Int(h.Sessions)
	e.Float(h.UptimeS)
	e.Bool(h.Degraded)
	e.String(h.DegradedCause)
	if h.Cluster == nil {
		e.Bool(false)
		return
	}
	e.Bool(true)
	e.String(h.Cluster.Self)
	e.Int(h.Cluster.Nodes)
	down := omitEmpty(h.Cluster.PeersDown)
	n := putSlice(e, down)
	for i := 0; i < n; i++ {
		e.String(down[i])
	}
}

// GetHealth reads a health report.
func GetHealth(d *Dec) api.Health {
	h := api.Health{
		Status:        d.String(),
		Sessions:      d.Int(),
		UptimeS:       d.Float(),
		Degraded:      d.Bool(),
		DegradedCause: d.String(),
	}
	if !d.Bool() {
		return h
	}
	ch := &api.ClusterHealth{Self: d.String(), Nodes: d.Int()}
	if n := getSlice(d, 1); n > 0 {
		ch.PeersDown = make([]string, n)
		for i := range ch.PeersDown {
			ch.PeersDown[i] = d.String()
		}
	}
	h.Cluster = ch
	return h
}

// PutClusterStatus appends a cluster-status report.
func PutClusterStatus(e *Enc, cs api.ClusterStatus) {
	e.Bool(cs.Enabled)
	e.String(cs.Self)
	e.Int(cs.VirtualNodes)
	e.String(cs.Version)
	nodes := omitEmpty(cs.Nodes)
	n := putSlice(e, nodes)
	for i := 0; i < n; i++ {
		e.String(nodes[i].Name)
		e.String(nodes[i].Addr)
		e.Bool(nodes[i].Self)
		e.Bool(nodes[i].Connected)
	}
	rels := omitEmpty(cs.Relations)
	n = putSlice(e, rels)
	for i := 0; i < n; i++ {
		e.String(rels[i].Relation)
		e.Int(rels[i].Column)
	}
}

// GetClusterStatus reads a cluster-status report.
func GetClusterStatus(d *Dec) api.ClusterStatus {
	cs := api.ClusterStatus{
		Enabled:      d.Bool(),
		Self:         d.String(),
		VirtualNodes: d.Int(),
		Version:      d.String(),
	}
	if n := getSlice(d, 4); n > 0 {
		cs.Nodes = make([]api.ClusterNode, n)
		for i := range cs.Nodes {
			cs.Nodes[i] = api.ClusterNode{
				Name:      d.String(),
				Addr:      d.String(),
				Self:      d.Bool(),
				Connected: d.Bool(),
			}
		}
	}
	if n := getSlice(d, 2); n > 0 {
		cs.Relations = make([]api.RelationPlacement, n)
		for i := range cs.Relations {
			cs.Relations[i] = api.RelationPlacement{Relation: d.String(), Column: d.Int()}
		}
	}
	return cs
}

// PutResponses appends a coordinate batch's responses.
func PutResponses(e *Enc, rs []api.Response) {
	n := putSlice(e, rs)
	for i := 0; i < n; i++ {
		e.String(rs[i].ID)
		PutResult(e, rs[i].Result)
		PutError(e, rs[i].Error)
	}
}

// GetResponses reads a coordinate batch's responses.
func GetResponses(d *Dec) []api.Response {
	n := getSlice(d, 3)
	if n < 0 {
		return nil
	}
	rs := make([]api.Response, n)
	for i := range rs {
		rs[i] = api.Response{ID: d.String(), Result: GetResult(d), Error: GetError(d)}
	}
	return rs
}

// PutRequests appends a coordinate batch's requests.
func PutRequests(e *Enc, rs []api.Request) {
	n := putSlice(e, rs)
	for i := 0; i < n; i++ {
		e.String(rs[i].ID)
		PutQueries(e, rs[i].Queries)
	}
}

// GetRequests reads a coordinate batch's requests.
func GetRequests(d *Dec) []api.Request {
	n := getSlice(d, 2)
	if n < 0 {
		return nil
	}
	rs := make([]api.Request, n)
	for i := range rs {
		rs[i] = api.Request{ID: d.String(), Queries: GetQueries(d)}
	}
	return rs
}
