package wire

import (
	"fmt"

	"entangled/internal/api"
	"entangled/internal/eq"
)

// Kind discriminates message payloads. Client-to-server kinds name the
// operation (mirroring the HTTP endpoints one-to-one); server-to-client
// frames are either a Reply correlated to a request id or an
// unsolicited Push.
type Kind uint8

const (
	// KindCoordinate is POST /v1/coordinate: a batch of independent
	// coordination requests.
	KindCoordinate Kind = 1
	// KindCreateSession is POST /v1/sessions.
	KindCreateSession Kind = 2
	// KindJoin is POST /v1/sessions/{id}/join.
	KindJoin Kind = 3
	// KindLeave is POST /v1/sessions/{id}/leave.
	KindLeave Kind = 4
	// KindStatus is GET /v1/sessions/{id}.
	KindStatus Kind = 5
	// KindDeleteSession is DELETE /v1/sessions/{id}.
	KindDeleteSession Kind = 6
	// KindSubscribe registers this connection for push notifications
	// about one session (no HTTP equivalent — HTTP clients poll).
	KindSubscribe Kind = 7
	// KindHealth is GET /healthz.
	KindHealth Kind = 8
	// KindForward wraps another request for node-to-node forwarding
	// inside a cluster: origin metadata, then the inner kind and its
	// body verbatim. Forwarded frames are terminal — a receiver that
	// does not own the target answers route_moved instead of forwarding
	// again, so a request crosses at most one node boundary.
	KindForward Kind = 9
	// KindCluster is GET /v1/cluster: the node's membership view, ring
	// parameters and relation placements.
	KindCluster Kind = 10
	// KindTenant wraps another client request with a tenant identity
	// for admission accounting: the tenant name, then the inner kind
	// and its body verbatim to the end of the frame (the binary
	// analogue of the HTTP X-Tenant header). The envelope must be
	// outermost: tenant-in-tenant and tenant-in-forward are protocol
	// errors, and forwards never carry one — admission is decided and
	// accounted at the edge node.
	KindTenant Kind = 11

	// KindReply answers the request with the same id.
	KindReply Kind = 0x80
	// KindPush is an unsolicited server notification (id 0).
	KindPush Kind = 0x81
)

// String names the kind for diagnostics.
func (k Kind) String() string {
	switch k {
	case KindCoordinate:
		return "coordinate"
	case KindCreateSession:
		return "create_session"
	case KindJoin:
		return "join"
	case KindLeave:
		return "leave"
	case KindStatus:
		return "status"
	case KindDeleteSession:
		return "delete_session"
	case KindSubscribe:
		return "subscribe"
	case KindHealth:
		return "health"
	case KindForward:
		return "forward"
	case KindCluster:
		return "cluster"
	case KindTenant:
		return "tenant"
	case KindReply:
		return "reply"
	case KindPush:
		return "push"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Header is the fixed prefix of every frame payload: the message kind
// and the pipelining id correlating replies to requests (0 for push).
type Header struct {
	Kind Kind
	ID   uint64
}

// PutHeader appends a message header.
func PutHeader(e *Enc, h Header) {
	e.Byte(byte(h.Kind))
	e.Uvarint(h.ID)
}

// GetHeader reads a message header.
func GetHeader(d *Dec) Header {
	return Header{Kind: Kind(d.Byte()), ID: d.Uvarint()}
}

// --- request bodies (client to server) ---

// CoordinateReq is the body of a KindCoordinate request.
type CoordinateReq struct {
	Requests []api.Request
}

// Encode appends the request body.
func (m CoordinateReq) Encode(e *Enc) { PutRequests(e, m.Requests) }

// DecodeCoordinateReq reads a KindCoordinate body.
func DecodeCoordinateReq(d *Dec) CoordinateReq {
	return CoordinateReq{Requests: GetRequests(d)}
}

// CreateSessionReq is the body of a KindCreateSession request.
type CreateSessionReq struct {
	ID         string
	ParkUnsafe bool
}

// Encode appends the request body.
func (m CreateSessionReq) Encode(e *Enc) {
	e.String(m.ID)
	e.Bool(m.ParkUnsafe)
}

// DecodeCreateSessionReq reads a KindCreateSession body.
func DecodeCreateSessionReq(d *Dec) CreateSessionReq {
	return CreateSessionReq{ID: d.String(), ParkUnsafe: d.Bool()}
}

// JoinReq is the body of a KindJoin request.
type JoinReq struct {
	Session string
	Query   eq.Query
}

// Encode appends the request body.
func (m JoinReq) Encode(e *Enc) {
	e.String(m.Session)
	PutQuery(e, m.Query)
}

// DecodeJoinReq reads a KindJoin body.
func DecodeJoinReq(d *Dec) JoinReq {
	return JoinReq{Session: d.String(), Query: GetQuery(d)}
}

// LeaveReq is the body of a KindLeave request.
type LeaveReq struct {
	Session string
	QueryID string
}

// Encode appends the request body.
func (m LeaveReq) Encode(e *Enc) {
	e.String(m.Session)
	e.String(m.QueryID)
}

// DecodeLeaveReq reads a KindLeave body.
func DecodeLeaveReq(d *Dec) LeaveReq {
	return LeaveReq{Session: d.String(), QueryID: d.String()}
}

// StatusReq is the body of a KindStatus request.
type StatusReq struct {
	Session string
	Trace   bool
}

// Encode appends the request body.
func (m StatusReq) Encode(e *Enc) {
	e.String(m.Session)
	e.Bool(m.Trace)
}

// DecodeStatusReq reads a KindStatus body.
func DecodeStatusReq(d *Dec) StatusReq {
	return StatusReq{Session: d.String(), Trace: d.Bool()}
}

// SessionReq is the body of KindDeleteSession and KindSubscribe: just
// the session name.
type SessionReq struct {
	Session string
}

// Encode appends the request body.
func (m SessionReq) Encode(e *Enc) { e.String(m.Session) }

// DecodeSessionReq reads a session-name-only body.
func DecodeSessionReq(d *Dec) SessionReq { return SessionReq{Session: d.String()} }

// Forward is the body of a KindForward request: the origin node's name
// (diagnostics and metrics), a hop count (always 1 on the wire today —
// forwards are terminal — carried explicitly so the invariant is
// checkable), and the wrapped request verbatim. The reply to a forward
// is the reply the inner request would have received, so the origin
// relays the reply body byte-for-byte.
type Forward struct {
	Origin string
	Hops   int
	Kind   Kind
	Body   []byte
}

// Encode appends the forward envelope.
func (m Forward) Encode(e *Enc) {
	e.String(m.Origin)
	e.Int(m.Hops)
	e.Byte(byte(m.Kind))
	e.Uvarint(uint64(len(m.Body)))
	e.Raw(m.Body)
}

// DecodeForward reads a forward envelope.
func DecodeForward(d *Dec) Forward {
	f := Forward{Origin: d.String(), Hops: d.Int(), Kind: Kind(d.Byte())}
	n := d.Uvarint()
	if d.err != nil {
		return f
	}
	if n > uint64(d.Remaining()) {
		d.fail(fmt.Sprintf("forward body length %d exceeds remaining %d bytes", n, d.Remaining()))
		return f
	}
	f.Body = d.b[d.off : d.off+int(n)]
	d.off += int(n)
	return f
}

// TenantReq is the body of a KindTenant envelope: the tenant identity,
// then the wrapped request verbatim — no length prefix, the inner body
// runs to the end of the frame. Decoding aliases the input buffer.
type TenantReq struct {
	Tenant string
	Kind   Kind
	Body   []byte
}

// Encode appends the tenant envelope.
func (m TenantReq) Encode(e *Enc) {
	e.String(m.Tenant)
	e.Byte(byte(m.Kind))
	e.Raw(m.Body)
}

// DecodeTenantReq reads a tenant envelope.
func DecodeTenantReq(d *Dec) TenantReq {
	t := TenantReq{Tenant: d.String(), Kind: Kind(d.Byte())}
	if d.err != nil {
		return t
	}
	t.Body = d.b[d.off:]
	d.off = len(d.b)
	return t
}

// --- replies (server to client) ---

// ReplyError is a service-level failure carried in a reply frame: the
// same status/code/message triple the HTTP error envelope carries, so
// the client layer reconstructs an identical typed error for both
// transports.
type ReplyError struct {
	Status  int
	Code    string
	Message string
	// Owner mirrors api.Error.Owner: the owning node on route_moved.
	Owner string
	// RetryAfterMS mirrors api.Error.RetryAfterMS: the capacity hint
	// on throttled.
	RetryAfterMS int64
}

// Error implements the error interface.
func (e *ReplyError) Error() string {
	return fmt.Sprintf("%s: %s (HTTP-equivalent %d)", e.Code, e.Message, e.Status)
}

// PutReplyErr appends a complete error reply body.
func PutReplyErr(e *Enc, status int, we *api.Error) {
	e.Bool(false)
	e.Int(status)
	e.String(we.Code)
	e.String(we.Message)
	e.String(we.Owner)
	e.Int64(we.RetryAfterMS)
}

// PutReplyOK appends the success prefix of a reply body; the
// kind-specific payload follows.
func PutReplyOK(e *Enc, status int) {
	e.Bool(true)
	e.Int(status)
}

// GetReply reads a reply body's prefix: the HTTP-equivalent status on
// success, or a *ReplyError. The kind-specific payload (on success)
// remains in the decoder.
func GetReply(d *Dec) (status int, err error) {
	ok := d.Bool()
	status = d.Int()
	if d.err != nil {
		return 0, d.err
	}
	if ok {
		return status, nil
	}
	re := &ReplyError{Status: status, Code: d.String(), Message: d.String(), Owner: d.String(), RetryAfterMS: d.Int64()}
	if d.err != nil {
		return 0, d.err
	}
	return status, re
}

// Push is an unsolicited server notification: a previously parked
// unsafe arrival in Session was admitted by the departure that cleared
// its conflict. Seq is the session update sequence number of the event
// that admitted it. The HTTP analogue is the client polling session
// status after its join came back 202 "parked":true.
type Push struct {
	Session string
	QueryID string
	Seq     int
}

// Encode appends the push body.
func (p Push) Encode(e *Enc) {
	e.String(p.Session)
	e.String(p.QueryID)
	e.Int(p.Seq)
}

// DecodePush reads a push body.
func DecodePush(d *Dec) Push {
	return Push{Session: d.String(), QueryID: d.String(), Seq: d.Int()}
}
