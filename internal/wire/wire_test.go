package wire

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"entangled/internal/api"
	"entangled/internal/coord"
	"entangled/internal/eq"
)

var update = flag.Bool("update", false, "rewrite golden frame files")

// sampleQuery mirrors the api package's golden fixture, so the two
// protocols' golden files describe the same payloads.
func sampleQuery() eq.Query {
	return eq.Query{
		ID:   "u1",
		Post: []eq.Atom{eq.NewAtom("R", eq.C("U2"), eq.V("y"))},
		Head: []eq.Atom{eq.NewAtom("R", eq.C("U1"), eq.V("x"))},
		Body: []eq.Atom{eq.NewAtom("T", eq.V("x"), eq.C("c0"))},
	}
}

func sampleResult() *coord.Result {
	return &coord.Result{
		Set:       []int{0, 1},
		Values:    map[int]map[string]eq.Value{0: {"x": "t0"}, 1: {"x": "t0", "y": "t0"}},
		DBQueries: 2,
	}
}

// goldenFrame compares the complete frame (header + payload) for one
// encoded message against testdata/<name>.bin byte for byte; `go test
// ./internal/wire -update` rewrites the files. These frames ARE the
// binary protocol: a diff here is a wire-format change and must be
// deliberate. The stored frame is also re-read through ReadFrame, so
// the golden files double as known-good decoder input (and fuzz
// seeds).
func goldenFrame(t *testing.T, name string, encode func(*Enc)) []byte {
	t.Helper()
	var e Enc
	encode(&e)
	frame := AppendFrame(nil, e.Bytes())
	path := filepath.Join("testdata", name+".bin")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, frame, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/wire -update` to create it)", err)
	}
	if !bytes.Equal(frame, want) {
		t.Fatalf("frame %s drifted from golden file:\n--- got ---\n%x\n--- want ---\n%x", name, frame, want)
	}
	payload, err := ReadFrame(bytes.NewReader(want), nil)
	if err != nil {
		t.Fatalf("%s: re-reading golden frame: %v", name, err)
	}
	if !bytes.Equal(payload, e.Bytes()) {
		t.Fatalf("%s: frame payload did not round-trip", name)
	}
	return payload
}

func TestGoldenCoordinateRequestFrame(t *testing.T) {
	req := CoordinateReq{Requests: []api.Request{{ID: "r1", Queries: []eq.Query{sampleQuery()}}}}
	payload := goldenFrame(t, "coordinate_request", func(e *Enc) {
		PutHeader(e, Header{Kind: KindCoordinate, ID: 1})
		req.Encode(e)
	})
	d := NewDec(payload)
	if h := GetHeader(d); h.Kind != KindCoordinate || h.ID != 1 {
		t.Fatalf("header %+v", h)
	}
	back := DecodeCoordinateReq(d)
	if err := d.Finish(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, req) {
		t.Fatalf("decoded %+v != %+v", back, req)
	}
}

func TestGoldenCoordinateReplyFrame(t *testing.T) {
	resps := []api.Response{
		{ID: "r1", Result: sampleResult()},
		{ID: "r2", Error: &api.Error{Code: coord.CodeUnsafe, Message: "coord: query set is not safe: unsafe queries [0]"}},
	}
	payload := goldenFrame(t, "coordinate_reply", func(e *Enc) {
		PutHeader(e, Header{Kind: KindReply, ID: 1})
		PutReplyOK(e, 200)
		PutResponses(e, resps)
	})
	d := NewDec(payload)
	if h := GetHeader(d); h.Kind != KindReply || h.ID != 1 {
		t.Fatalf("header %+v", h)
	}
	status, err := GetReply(d)
	if err != nil || status != 200 {
		t.Fatalf("reply status %d err %v", status, err)
	}
	back := GetResponses(d)
	if err := d.Finish(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, resps) {
		t.Fatalf("decoded %+v != %+v", back, resps)
	}
}

func TestGoldenSessionUpdateReplyFrame(t *testing.T) {
	up := api.Update{
		Seq:       3,
		Admitted:  true,
		TeamSize:  2,
		Stats:     coord.DeltaStats{Slot: 2, Components: 2, Dirty: 1, Reused: 1, DBQueries: 2},
		ElapsedNS: 1_500_000,
	}
	payload := goldenFrame(t, "session_update_reply", func(e *Enc) {
		PutHeader(e, Header{Kind: KindReply, ID: 7})
		PutReplyOK(e, 200)
		PutUpdate(e, up)
	})
	d := NewDec(payload)
	GetHeader(d)
	if _, err := GetReply(d); err != nil {
		t.Fatal(err)
	}
	back := GetUpdate(d)
	if err := d.Finish(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, up) {
		t.Fatalf("decoded %+v != %+v", back, up)
	}
}

func TestGoldenSessionStatusReplyFrame(t *testing.T) {
	st := api.SessionStatus{
		ID:      "alpha",
		Live:    1,
		Queries: []eq.Query{sampleQuery()},
		Result: &coord.Result{
			Set:       []int{0},
			Values:    map[int]map[string]eq.Value{0: {"x": "t0", "y": "t0"}},
			DBQueries: 2,
		},
		Totals:   api.Totals{Events: 4, Joins: 3, Leaves: 1, Dirty: 4, Reused: 2, DBQueries: 9},
		TeamSize: 1,
		Trace: &coord.Trace{Components: []coord.ComponentEvent{
			{Members: []int{0}, Set: []int{0}, Status: "grounded", SetSize: 1, Combined: "T(q0.x, 'c0')"},
		}},
	}
	payload := goldenFrame(t, "session_status_reply", func(e *Enc) {
		PutHeader(e, Header{Kind: KindReply, ID: 9})
		PutReplyOK(e, 200)
		PutSessionStatus(e, st)
	})
	d := NewDec(payload)
	GetHeader(d)
	if _, err := GetReply(d); err != nil {
		t.Fatal(err)
	}
	back := GetSessionStatus(d)
	if err := d.Finish(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, st) {
		t.Fatalf("decoded %+v != %+v", back, st)
	}
}

func TestGoldenErrorReplyFrame(t *testing.T) {
	payload := goldenFrame(t, "error_reply", func(e *Enc) {
		PutHeader(e, Header{Kind: KindReply, ID: 2})
		PutReplyErr(e, 409, &api.Error{
			Code:    coord.CodeUnsafeArrival,
			Message: "coord: arrival would make the query set unsafe u9: would make queries [1 4] unsafe",
		})
	})
	d := NewDec(payload)
	GetHeader(d)
	status, err := GetReply(d)
	if status != 409 {
		t.Fatalf("status %d", status)
	}
	re, ok := err.(*ReplyError)
	if !ok {
		t.Fatalf("reply error %T", err)
	}
	if re.Code != coord.CodeUnsafeArrival || re.Status != 409 {
		t.Fatalf("decoded %+v", re)
	}
	if err := d.Finish(); err != nil {
		t.Fatal(err)
	}
}

// TestGoldenTenantRequestFrame pins the admission envelope: the tenant
// name, then the wrapped request verbatim. The inner frame here is the
// same coordinate request as coordinate_request.bin.
func TestGoldenTenantRequestFrame(t *testing.T) {
	inner := CoordinateReq{Requests: []api.Request{{ID: "r1", Queries: []eq.Query{sampleQuery()}}}}
	var ie Enc
	inner.Encode(&ie)
	env := TenantReq{Tenant: "acme", Kind: KindCoordinate, Body: ie.Bytes()}
	payload := goldenFrame(t, "tenant_request", func(e *Enc) {
		PutHeader(e, Header{Kind: KindTenant, ID: 4})
		env.Encode(e)
	})
	d := NewDec(payload)
	if h := GetHeader(d); h.Kind != KindTenant || h.ID != 4 {
		t.Fatalf("header %+v", h)
	}
	back := DecodeTenantReq(d)
	if err := d.Finish(); err != nil {
		t.Fatal(err)
	}
	if back.Tenant != "acme" || back.Kind != KindCoordinate || !bytes.Equal(back.Body, ie.Bytes()) {
		t.Fatalf("decoded %+v != %+v", back, env)
	}
	// The aliased body decodes as the inner request.
	id := NewDec(back.Body)
	if got := DecodeCoordinateReq(id); id.Finish() != nil || !reflect.DeepEqual(got, inner) {
		t.Fatalf("inner decode %+v != %+v", got, inner)
	}
}

// TestGoldenThrottledReplyFrame pins the throttled error reply with its
// retry-after hint, the binary twin of the HTTP 429 envelope.
func TestGoldenThrottledReplyFrame(t *testing.T) {
	payload := goldenFrame(t, "throttled_reply", func(e *Enc) {
		PutHeader(e, Header{Kind: KindReply, ID: 5})
		PutReplyErr(e, 429, &api.Error{
			Code:         "throttled",
			Message:      `admission: tenant "hot" throttled (rate)`,
			RetryAfterMS: 100,
		})
	})
	d := NewDec(payload)
	GetHeader(d)
	status, err := GetReply(d)
	if status != 429 {
		t.Fatalf("status %d", status)
	}
	re, ok := err.(*ReplyError)
	if !ok || re.Code != "throttled" || re.RetryAfterMS != 100 {
		t.Fatalf("decoded %+v", err)
	}
	if err := d.Finish(); err != nil {
		t.Fatal(err)
	}
}

func TestGoldenPushFrame(t *testing.T) {
	p := Push{Session: "alpha", QueryID: "u9", Seq: 12}
	payload := goldenFrame(t, "push", func(e *Enc) {
		PutHeader(e, Header{Kind: KindPush, ID: 0})
		p.Encode(e)
	})
	d := NewDec(payload)
	if h := GetHeader(d); h.Kind != KindPush || h.ID != 0 {
		t.Fatalf("header %+v", h)
	}
	back := DecodePush(d)
	if err := d.Finish(); err != nil {
		t.Fatal(err)
	}
	if back != p {
		t.Fatalf("decoded %+v != %+v", back, p)
	}
}

// jsonRoundTrip pushes v through the JSON codec into out, the way the
// HTTP protocol would deliver it.
func jsonRoundTrip(t *testing.T, v, out any) {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(b, out); err != nil {
		t.Fatal(err)
	}
}

// TestBinaryMatchesJSONSemantics pins the nil-versus-empty contract at
// the DTO level: a value decoded from the binary codec must be
// DeepEqual to the same value decoded from the JSON codec, including
// the cases where JSON's omitempty normalizes empty to absent.
func TestBinaryMatchesJSONSemantics(t *testing.T) {
	queries := []eq.Query{
		sampleQuery(),
		{ID: "bare", Head: []eq.Atom{eq.NewAtom("R", eq.C("U3"), eq.V("z"))}},
		{Head: []eq.Atom{eq.NewAtom("R", eq.C("U4"), eq.V("w"))}, Body: []eq.Atom{}, Post: []eq.Atom{}},
		{ID: "cst", Head: []eq.Atom{eq.NewAtom("S", eq.C(""), eq.C("v"))}, Body: []eq.Atom{eq.NewAtom("T", eq.V("q"), eq.C("c1"))}},
	}
	for i, q := range queries {
		var viaJSON eq.Query
		jsonRoundTrip(t, q, &viaJSON)
		var e Enc
		PutQuery(&e, q)
		d := NewDec(e.Bytes())
		viaBinary := GetQuery(d)
		if err := d.Finish(); err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if !reflect.DeepEqual(viaBinary, viaJSON) {
			t.Errorf("query %d: binary %+v != json %+v", i, viaBinary, viaJSON)
		}
	}

	results := []*coord.Result{
		nil,
		{},
		{Set: []int{}},
		sampleResult(),
		{Set: []int{2}, Values: map[int]map[string]eq.Value{}, DBQueries: 1},
		{Set: []int{0}, Values: map[int]map[string]eq.Value{0: {}}},
	}
	for i, r := range results {
		var viaJSON *coord.Result
		jsonRoundTrip(t, r, &viaJSON)
		var e Enc
		PutResult(&e, r)
		d := NewDec(e.Bytes())
		viaBinary := GetResult(d)
		if err := d.Finish(); err != nil {
			t.Fatalf("result %d: %v", i, err)
		}
		if !reflect.DeepEqual(viaBinary, viaJSON) {
			t.Errorf("result %d: binary %#v != json %#v", i, viaBinary, viaJSON)
		}
	}

	traces := []*coord.Trace{
		nil,
		{},
		{Pruned: []coord.PruneEvent{}, Components: []coord.ComponentEvent{}},
		{Pruned: []coord.PruneEvent{{Query: 1, Reason: "duplicate"}}},
		{Components: []coord.ComponentEvent{{Members: []int{0, 1}, Status: "pruned"}}},
	}
	for i, tr := range traces {
		var viaJSON *coord.Trace
		jsonRoundTrip(t, tr, &viaJSON)
		var e Enc
		PutTrace(&e, tr)
		d := NewDec(e.Bytes())
		viaBinary := GetTrace(d)
		if err := d.Finish(); err != nil {
			t.Fatalf("trace %d: %v", i, err)
		}
		if !reflect.DeepEqual(viaBinary, viaJSON) {
			t.Errorf("trace %d: binary %#v != json %#v", i, viaBinary, viaJSON)
		}
	}
}

// TestDeterministicEncoding pins that map-bearing DTOs encode
// identically across runs (sorted key order), which the golden frames
// depend on.
func TestDeterministicEncoding(t *testing.T) {
	r := sampleResult()
	var first []byte
	for i := 0; i < 32; i++ {
		var e Enc
		PutResult(&e, r)
		if first == nil {
			first = append([]byte(nil), e.Bytes()...)
			continue
		}
		if !bytes.Equal(e.Bytes(), first) {
			t.Fatalf("encoding %d differs: %x vs %x", i, e.Bytes(), first)
		}
	}
}

// TestDecodeValidation pins the decoder's input validation: the same
// malformed shapes the JSON codec rejects (empty variable names, empty
// relation names) fail typed here too.
func TestDecodeValidation(t *testing.T) {
	bad := []func(*Enc){
		func(e *Enc) { e.Byte(byte(eq.TermVar)); e.String("") }, // var needs a name
		func(e *Enc) { e.Byte(7); e.String("x") },               // unknown term kind
		func(e *Enc) { e.String(""); e.Uvarint(0) },             // atom needs a relation
		func(e *Enc) { e.Byte(2) },                              // bad bool
		func(e *Enc) { e.Uvarint(1 << 40) },                     // hostile string length
		func(e *Enc) { e.Uvarint(200); e.String("short") },      // hostile collection length
	}
	decoders := []func(*Dec){
		func(d *Dec) { GetTerm(d) },
		func(d *Dec) { GetTerm(d) },
		func(d *Dec) { GetAtom(d) },
		func(d *Dec) { d.Bool() },
		func(d *Dec) { _ = d.String() },
		func(d *Dec) { d.Len(2) },
	}
	for i, enc := range bad {
		var e Enc
		enc(&e)
		d := NewDec(e.Bytes())
		decoders[i](d)
		if d.Err() == nil {
			t.Errorf("case %d: malformed input decoded cleanly", i)
			continue
		}
		if !errors.Is(d.Err(), ErrMalformed) {
			t.Errorf("case %d: error %v is not ErrMalformed", i, d.Err())
		}
	}
}
