package wire

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// FuzzBinaryDecode feeds raw bytes through the full receive path —
// frame reading, header parsing, and every message decoder — asserting
// the hostile-input contract: truncated, bit-flipped, oversized, or
// garbage input yields a typed error (io.EOF, io.ErrUnexpectedEOF, or
// ErrMalformed), never a panic, hang, or unbounded allocation. The
// golden frames seed the corpus so mutations start from valid
// protocol bytes (mirroring FuzzWALReplay in internal/persist).
func FuzzBinaryDecode(f *testing.F) {
	ents, err := os.ReadDir("testdata")
	if err != nil {
		f.Fatal(err)
	}
	for _, ent := range ents {
		if filepath.Ext(ent.Name()) != ".bin" {
			continue
		}
		data, err := os.ReadFile(filepath.Join("testdata", ent.Name()))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
		// A truncated and a bit-flipped variant of each golden frame.
		f.Add(data[:len(data)/2])
		flipped := append([]byte(nil), data...)
		flipped[len(flipped)-1] ^= 0x40
		f.Add(flipped)
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0}) // oversized length
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0})             // zero length

	f.Fuzz(func(t *testing.T, data []byte) {
		// The framed path: read frames until the input runs out or turns
		// malformed.
		br := bytes.NewReader(data)
		var buf []byte
		for {
			payload, err := ReadFrame(br, buf)
			if err != nil {
				if err != io.EOF && err != io.ErrUnexpectedEOF && !errors.Is(err, ErrMalformed) {
					t.Fatalf("untyped frame error: %v", err)
				}
				break
			}
			buf = payload
			decodeEverything(t, payload)
		}
		// The raw path: the same payload decoders over the unframed
		// bytes, so corruption the CRC would catch still cannot panic a
		// decoder.
		decodeEverything(t, data)
	})
}

// decodeEverything runs every message decoder over the payload; each
// either succeeds or fails with a sticky typed error. The decoders are
// exercised independently (fresh Dec each) because a real connection
// picks exactly one based on the header kind.
func decodeEverything(t *testing.T, payload []byte) {
	t.Helper()
	check := func(d *Dec) {
		if err := d.Err(); err != nil && !errors.Is(err, ErrMalformed) {
			t.Fatalf("untyped decode error: %v", err)
		}
	}
	run := func(body func(*Dec)) {
		d := NewDec(payload)
		h := GetHeader(d)
		_ = h
		body(d)
		d.Finish()
		check(d)
	}
	run(func(d *Dec) { DecodeCoordinateReq(d) })
	run(func(d *Dec) { DecodeCreateSessionReq(d) })
	run(func(d *Dec) { DecodeJoinReq(d) })
	run(func(d *Dec) { DecodeLeaveReq(d) })
	run(func(d *Dec) { DecodeStatusReq(d) })
	run(func(d *Dec) { DecodeSessionReq(d) })
	run(func(d *Dec) { DecodeForward(d) })
	run(func(d *Dec) { DecodeTenantReq(d) })
	run(func(d *Dec) { DecodePush(d) })
	run(func(d *Dec) {
		status, err := GetReply(d)
		_ = status
		var re *ReplyError
		if err != nil && !errors.As(err, &re) && !errors.Is(err, ErrMalformed) {
			t.Fatalf("untyped reply error: %v", err)
		}
		// Success replies carry one of these payloads.
		GetResponses(d)
		GetUpdate(d)
		GetSessionStatus(d)
		GetHealth(d)
	})
}
