package wire

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
)

// ErrConnClosed is the sentinel wrapped by every call that failed
// because the underlying connection died (peer closed, reset, or local
// Close). It is a transport-level condition — the request may or may
// not have executed — and clients treat it as retryable for idempotent
// operations.
var ErrConnClosed = errors.New("wire: connection closed")

// call is one in-flight pipelined request.
type call struct {
	reply chan callReply // buffered(1): the read loop never blocks on it
}

type callReply struct {
	status  int
	payload []byte
	err     error
}

// ClientConn is one persistent binary-protocol connection. Calls
// pipeline: any number of goroutines may Call concurrently, frames are
// multiplexed by request id, and replies resolve out of order as the
// server finishes them — one TCP round trip carries many requests. A
// connection that dies fails every pending call with an error wrapping
// ErrConnClosed; the ClientConn is then spent (dial a fresh one).
type ClientConn struct {
	c net.Conn

	wmu sync.Mutex // serializes frame writes

	mu      sync.Mutex
	pending map[uint64]*call
	nextID  uint64
	closed  bool
	cause   error

	onPush func(Push) // immutable after dial
	done   chan struct{}
}

// Dial opens a binary-protocol connection to addr and starts its read
// loop. onPush (may be nil) observes unsolicited push frames; it is
// called from the read loop, so it must not block.
func Dial(addr string, onPush func(Push)) (*ClientConn, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("wire: dialing %s: %w", addr, err)
	}
	return NewClientConn(nc, onPush), nil
}

// NewClientConn wraps an established connection (the client side of the
// protocol): the magic preamble is sent and the read loop started.
func NewClientConn(nc net.Conn, onPush func(Push)) *ClientConn {
	cc := &ClientConn{
		c:       nc,
		pending: map[uint64]*call{},
		onPush:  onPush,
		done:    make(chan struct{}),
	}
	// The preamble is written from the constructor, before any Call can
	// race it; a write failure here surfaces on the first Call.
	if _, err := nc.Write([]byte(Magic)); err != nil {
		cc.fail(err)
		return cc
	}
	go cc.readLoop()
	return cc
}

// Done is closed when the connection dies (any reason).
func (cc *ClientConn) Done() <-chan struct{} { return cc.done }

// Close tears the connection down; pending calls fail with
// ErrConnClosed.
func (cc *ClientConn) Close() error {
	cc.fail(nil)
	return nil
}

// fail marks the connection dead, closes it, and fails every pending
// call. Idempotent; the first cause wins.
func (cc *ClientConn) fail(cause error) {
	cc.mu.Lock()
	if cc.closed {
		cc.mu.Unlock()
		return
	}
	cc.closed = true
	cc.cause = cause
	pending := cc.pending
	cc.pending = nil
	close(cc.done)
	cc.mu.Unlock()
	cc.c.Close()
	err := cc.closedErr()
	for _, ca := range pending {
		ca.reply <- callReply{err: err}
	}
}

// closedErr renders the death of the connection as a typed error.
func (cc *ClientConn) closedErr() error {
	if cc.cause != nil {
		return fmt.Errorf("%w: %v", ErrConnClosed, cc.cause)
	}
	return ErrConnClosed
}

// readLoop decodes frames until the connection dies: replies resolve
// their pending call, pushes go to the onPush callback. Any read or
// decode failure kills the connection — a framing error leaves the
// stream unsynchronized, so there is nothing to salvage.
func (cc *ClientConn) readLoop() {
	br := bufio.NewReaderSize(cc.c, 64<<10)
	var buf []byte
	for {
		payload, err := ReadFrame(br, buf)
		if err != nil {
			cc.fail(err)
			return
		}
		buf = payload
		d := NewDec(payload)
		h := GetHeader(d)
		switch h.Kind {
		case KindReply:
			cc.mu.Lock()
			ca := cc.pending[h.ID]
			delete(cc.pending, h.ID)
			cc.mu.Unlock()
			if ca == nil {
				continue // reply to an abandoned (ctx-cancelled) call
			}
			status, body, err := decodeReply(d)
			ca.reply <- callReply{status: status, payload: body, err: err}
		case KindPush:
			p := DecodePush(d)
			if err := d.Finish(); err != nil {
				cc.fail(err)
				return
			}
			if cc.onPush != nil {
				cc.onPush(p)
			}
		default:
			cc.fail(&DecodeError{Reason: fmt.Sprintf("unexpected %v frame from server", h.Kind)})
			return
		}
	}
}

// decodeReply splits a reply payload after the header: service errors
// come back as *ReplyError, successes as the status plus the
// kind-specific body bytes (copied — the read buffer is reused).
func decodeReply(d *Dec) (int, []byte, error) {
	status, err := GetReply(d)
	if err != nil {
		return status, nil, err
	}
	rest := d.b[d.off:]
	body := make([]byte, len(rest))
	copy(body, rest)
	return status, body, nil
}

// Call sends one request and waits for its reply. body is the
// kind-specific request body (without header). It returns the
// HTTP-equivalent status and the reply's body bytes; service failures
// are *ReplyError, transport failures wrap ErrConnClosed. Cancelling
// ctx abandons the wait (the request may still execute server-side; a
// late reply is discarded).
func (cc *ClientConn) Call(ctx context.Context, kind Kind, encode func(*Enc)) (int, []byte, error) {
	ca := &call{reply: make(chan callReply, 1)}
	cc.mu.Lock()
	if cc.closed {
		err := cc.closedErr()
		cc.mu.Unlock()
		return 0, nil, err
	}
	cc.nextID++
	id := cc.nextID
	cc.pending[id] = ca
	cc.mu.Unlock()

	buf := GetBuf()
	var e Enc
	e.Reset(*buf)
	PutHeader(&e, Header{Kind: kind, ID: id})
	if encode != nil {
		encode(&e)
	}
	cc.wmu.Lock()
	err := WriteFrame(cc.c, e.Bytes())
	cc.wmu.Unlock()
	*buf = e.Bytes()
	PutBuf(buf)
	if err != nil {
		cc.mu.Lock()
		delete(cc.pending, id)
		cc.mu.Unlock()
		cc.fail(err)
		return 0, nil, cc.closedErr()
	}

	select {
	case r := <-ca.reply:
		return r.status, r.payload, r.err
	case <-ctx.Done():
		cc.mu.Lock()
		delete(cc.pending, id)
		cc.mu.Unlock()
		return 0, nil, ctx.Err()
	}
}
