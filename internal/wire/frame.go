package wire

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"sync"
)

// Magic is the 4-byte connection preamble a client sends immediately
// after dialing ("Entangled Wire Protocol v1"). It lets a server reject
// a stray HTTP client (or any other protocol) with a clean error before
// any frame parsing, and gives a protocol-sniffing accept loop an
// unambiguous discriminator: no HTTP method starts with these bytes.
const Magic = "EWP1"

// frameHeader is the fixed prefix of every frame: 4-byte little-endian
// payload length, then 4-byte CRC-32 (IEEE) of the payload — the same
// frame discipline as internal/persist's WAL format.
const frameHeader = 8

// MaxFrame bounds a single payload. Coordination payloads are small; a
// length above this is corruption or abuse, and rejecting it keeps a
// flipped length byte from asking the peer to allocate gigabytes.
const MaxFrame = 1 << 24

// bufPool recycles encode/decode buffers across frames, so a busy
// connection's steady state allocates nothing on the framing path.
var bufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4<<10)
		return &b
	},
}

// GetBuf borrows a pooled byte slice (length zero).
func GetBuf() *[]byte { return bufPool.Get().(*[]byte) }

// PutBuf returns a borrowed slice to the pool. Oversized buffers are
// dropped so one huge payload does not pin its memory forever.
func PutBuf(b *[]byte) {
	if cap(*b) > 1<<20 {
		return
	}
	*b = (*b)[:0]
	bufPool.Put(b)
}

// AppendFrame appends one framed payload to buf and returns it.
func AppendFrame(buf, payload []byte) []byte {
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	return append(append(buf, hdr[:]...), payload...)
}

// WriteFrame writes one framed payload to w in a single Write call
// (header and payload coalesced through a pooled buffer), so concurrent
// frame writers serialized by a mutex never interleave partial frames.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrame {
		return fmt.Errorf("wire: frame payload of %d bytes exceeds the %d-byte cap", len(payload), MaxFrame)
	}
	buf := GetBuf()
	*buf = AppendFrame(*buf, payload)
	_, err := w.Write(*buf)
	PutBuf(buf)
	return err
}

// ReadFrame reads one frame from r, reusing buf's capacity when it
// suffices, and returns the payload (valid until the next reuse of
// buf). A clean EOF between frames returns io.EOF; a torn header or
// payload returns io.ErrUnexpectedEOF; an implausible length or a CRC
// mismatch returns a *DecodeError (errors.Is ErrMalformed) — the frame
// layer's corruption taxonomy, mirrored from persist.ReplayFrames.
func ReadFrame(r io.Reader, buf []byte) ([]byte, error) {
	var hdr [frameHeader]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err // io.EOF between frames is a clean close
	}
	length := binary.LittleEndian.Uint32(hdr[0:4])
	want := binary.LittleEndian.Uint32(hdr[4:8])
	if length == 0 || length > MaxFrame {
		return nil, &DecodeError{Reason: fmt.Sprintf("implausible frame length %d", length)}
	}
	if cap(buf) < int(length) {
		buf = make([]byte, length)
	}
	buf = buf[:length]
	if _, err := io.ReadFull(r, buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	if got := crc32.ChecksumIEEE(buf); got != want {
		return nil, &DecodeError{Reason: fmt.Sprintf("frame crc mismatch (stored %08x, computed %08x)", want, got)}
	}
	return buf, nil
}
