// Package api defines the HTTP/JSON wire format of the coordination
// service: request and response shapes for the batch endpoint
// (POST /v1/coordinate), the streaming-session resource
// (/v1/sessions/...), and the operational surface (/healthz, /metrics),
// plus the error taxonomy shared by server and client.
//
// The package is deliberately dependency-light — DTOs and conversions
// only — so internal/server and internal/client both build on one
// schema and cannot drift apart. Domain types that already have
// canonical JSON encodings (eq.Query, coord.Result, coord.DeltaStats,
// coord.Trace) are embedded directly; golden tests pin the payload
// bytes.
//
// Errors travel as {"code", "message"} pairs. Codes extend the stable
// coord taxonomy (coord.Code / coord.FromCode) with the stream and
// transport conditions the service adds; Sentinel maps a code back to
// the sentinel error it names, so client-side errors.Is checks behave
// exactly like in-process ones (e.g. errors.Is(err,
// coord.ErrUnsafeArrival) after an admission rejection that crossed the
// network).
package api
