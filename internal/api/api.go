package api

import (
	"context"
	"errors"
	"fmt"
	"time"

	"entangled/internal/admission"
	"entangled/internal/coord"
	"entangled/internal/eq"
	"entangled/internal/persist"
	"entangled/internal/stream"
)

// TenantHeader is the HTTP request header carrying the tenant identity
// (the binary protocol carries it in a wire.KindTenant envelope).
// Absent or empty means the default tenant.
const TenantHeader = "X-Tenant"

// Codes the service layer adds on top of the coord taxonomy
// (coord.Code*). Like those, they are part of the public wire contract.
const (
	// CodeDuplicateID names stream.ErrDuplicateID: a join reused a live
	// or parked query ID.
	CodeDuplicateID = "duplicate_id"
	// CodeUnknownID names stream.ErrUnknownID: a leave targeted an ID
	// with no live query.
	CodeUnknownID = "unknown_id"
	// CodeSessionExists rejects creating a session under a taken name.
	CodeSessionExists = "session_exists"
	// CodeSessionNotFound rejects operations on an unknown (or evicted)
	// session.
	CodeSessionNotFound = "session_not_found"
	// CodeSessionClosed reports a session torn down (deleted, evicted,
	// or server drain) while the operation was in flight.
	CodeSessionClosed = "session_closed"
	// CodeMailboxFull applies backpressure: the session's bounded
	// mailbox had no room for the operation.
	CodeMailboxFull = "mailbox_full"
	// CodeOverloaded applies backpressure on the batch path: the
	// admission queue was full.
	CodeOverloaded = "overloaded"
	// CodeDraining rejects new work while the server shuts down.
	CodeDraining = "draining"
	// CodeBadRequest reports a malformed payload.
	CodeBadRequest = "bad_request"
	// CodeDegraded rejects a write while the server's durable backend is
	// read-only after a disk fault. The write was NOT applied — its fate
	// is known — so retrying once the server recovers is always safe.
	CodeDegraded = "degraded"
	// CodeAckIndeterminate fails the ack of a write that was applied in
	// memory but could not be made durable (the append or fsync that
	// would have acked it failed). The write's fate is indeterminate: it
	// becomes durable if the server recovers before crashing, and is
	// lost otherwise. Blind retries of non-idempotent writes may
	// double-apply; clients should re-derive the outcome first.
	CodeAckIndeterminate = "ack_indeterminate"
	// CodeTimeout reports a server-side deadline cut the request short
	// (a stalled store or disk). Coordination reads retry safely.
	CodeTimeout = "timeout"
	// CodeRouteMoved reports a cluster request that reached a node which
	// does not own its target (the sender's ring was stale). Nothing was
	// applied — the fate is known — and Error.Owner names the node that
	// owns the target now; retry against it after refreshing the ring.
	CodeRouteMoved = "route_moved"
	// CodePeerUnavailable reports a forward that could not be sent
	// because the owning peer had no live connection. Nothing was
	// transmitted — the fate is known, exactly like CodeDegraded — so
	// retrying once the peer returns is always safe.
	CodePeerUnavailable = "peer_unavailable"
	// CodeThrottled rejects a request whose tenant is over an admission
	// budget (rate, in-flight, or rolling DBQueries). Nothing was
	// applied — the fate is known — and Error.RetryAfterMS hints when
	// capacity returns, so retrying after the hint is always safe.
	CodeThrottled = "throttled"
	// CodeInternal reports an unclassified server-side failure.
	CodeInternal = "internal"
)

// Cluster sentinels. They live here rather than in internal/cluster
// because the code↔sentinel mapping below must see them and cluster
// already imports api.
var (
	// ErrRouteMoved is the sentinel under CodeRouteMoved errors.
	ErrRouteMoved = errors.New("cluster: route moved")
	// ErrPeerUnavailable is the sentinel under CodePeerUnavailable
	// errors.
	ErrPeerUnavailable = errors.New("cluster: peer unavailable")
)

// Error is the wire shape of every error the service reports, nested
// under "error" in error response bodies.
type Error struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	// Owner names the node that owns the request's target, set only on
	// CodeRouteMoved errors so a stale client can re-route without
	// re-fetching the whole ring.
	Owner string `json:"owner,omitempty"`
	// RetryAfterMS is the server's hint, in milliseconds, of when
	// capacity returns; set only on CodeThrottled errors whose budget
	// refills on a clock. HTTP responses mirror it (coarsened to
	// seconds) in the standard Retry-After header.
	RetryAfterMS int64 `json:"retry_after_ms,omitempty"`
}

// Error implements the error interface on the wire shape itself.
func (e *Error) Error() string { return e.Code + ": " + e.Message }

// CodeOf classifies an error into its stable wire code: the coord
// taxonomy first, then the stream sentinels, then CodeInternal.
func CodeOf(err error) string {
	if c := coord.Code(err); c != "" {
		return c
	}
	switch {
	case errors.Is(err, stream.ErrDuplicateID):
		return CodeDuplicateID
	case errors.Is(err, stream.ErrUnknownID):
		return CodeUnknownID
	case errors.Is(err, persist.ErrIndeterminate):
		return CodeAckIndeterminate
	case errors.Is(err, persist.ErrDegraded):
		return CodeDegraded
	case errors.Is(err, context.DeadlineExceeded):
		return CodeTimeout
	case errors.Is(err, ErrRouteMoved):
		return CodeRouteMoved
	case errors.Is(err, ErrPeerUnavailable):
		return CodePeerUnavailable
	case errors.Is(err, admission.ErrThrottled):
		return CodeThrottled
	}
	return CodeInternal
}

// Sentinel returns the sentinel error a code names, or nil for codes
// that carry no sentinel (transport-level conditions and unknown
// codes).
func Sentinel(code string) error {
	if s := coord.FromCode(code); s != nil {
		return s
	}
	switch code {
	case CodeDuplicateID:
		return stream.ErrDuplicateID
	case CodeUnknownID:
		return stream.ErrUnknownID
	case CodeDegraded:
		return persist.ErrDegraded
	case CodeAckIndeterminate:
		return persist.ErrIndeterminate
	case CodeTimeout:
		return context.DeadlineExceeded
	case CodeRouteMoved:
		return ErrRouteMoved
	case CodePeerUnavailable:
		return ErrPeerUnavailable
	case CodeThrottled:
		return admission.ErrThrottled
	}
	return nil
}

// Owned is implemented by errors that name the node owning the
// request's target (route_moved); WireError copies it into
// Error.Owner.
type Owned interface{ OwnerNode() string }

// RetryHinter is implemented by errors that know when capacity returns
// (admission throttles); WireError copies the hint into
// Error.RetryAfterMS.
type RetryHinter interface{ RetryAfterHint() time.Duration }

// RetryHintMS extracts a retry-after hint from an error chain as whole
// milliseconds, rounding sub-millisecond hints up so a positive hint
// never truncates to "no hint". Zero means no hint.
func RetryHintMS(err error) int64 {
	var h RetryHinter
	if !errors.As(err, &h) {
		return 0
	}
	d := h.RetryAfterHint()
	if d <= 0 {
		return 0
	}
	ms := int64((d + time.Millisecond - 1) / time.Millisecond)
	if ms < 1 {
		ms = 1
	}
	return ms
}

// WireError renders an error for transport. Nil maps to nil.
func WireError(err error) *Error {
	if err == nil {
		return nil
	}
	e := &Error{Code: CodeOf(err), Message: err.Error()}
	var o Owned
	if errors.As(err, &o) {
		e.Owner = o.OwnerNode()
	}
	e.RetryAfterMS = RetryHintMS(err)
	return e
}

// Err reconstructs a typed error from the wire shape: the message and
// owner are preserved and the named sentinel is attached, so errors.Is
// sees through the network hop. Nil maps to nil.
func (e *Error) Err() error {
	if e == nil {
		return nil
	}
	return &codedError{msg: e.Message, code: e.Code, owner: e.Owner, retryAfterMS: e.RetryAfterMS, sentinel: Sentinel(e.Code)}
}

// codedError is a decoded wire error: the remote message, its stable
// code, and the sentinel the code names (when any) for errors.Is.
type codedError struct {
	msg          string
	code         string
	owner        string
	retryAfterMS int64
	sentinel     error
}

func (e *codedError) Error() string {
	if e.msg != "" {
		return e.msg
	}
	return e.code
}

func (e *codedError) Unwrap() error { return e.sentinel }

// OwnerNode implements Owned so relayed route_moved errors keep their
// owner across hops.
func (e *codedError) OwnerNode() string { return e.owner }

// RetryAfterHint implements RetryHinter so relayed throttled errors
// keep their hint across hops.
func (e *codedError) RetryAfterHint() time.Duration {
	return time.Duration(e.retryAfterMS) * time.Millisecond
}

// Request is one coordination request inside a batch call.
type Request struct {
	// ID is an opaque caller tag echoed in the response.
	ID string `json:"id,omitempty"`
	// Queries is the entangled query set to coordinate.
	Queries []eq.Query `json:"queries"`
}

// CoordinateRequest is the body of POST /v1/coordinate.
type CoordinateRequest struct {
	Requests []Request `json:"requests"`
}

// Response is one request's outcome. Result is null when no
// coordinating set exists or the request failed; Error carries the
// failure. Result.DBQueries is the exact per-request cost, identical
// to what an in-process run reports.
type Response struct {
	ID     string        `json:"id,omitempty"`
	Result *coord.Result `json:"result"`
	Error  *Error        `json:"error,omitempty"`
}

// CoordinateResponse is the body of a successful POST /v1/coordinate.
type CoordinateResponse struct {
	Responses []Response `json:"responses"`
}

// CreateSessionRequest is the body of POST /v1/sessions.
type CreateSessionRequest struct {
	// ID names the session; empty asks the server to generate one.
	ID string `json:"id,omitempty"`
	// ParkUnsafe parks unsafe arrivals for retry instead of rejecting
	// them (stream.Options.ParkUnsafe).
	ParkUnsafe bool `json:"park_unsafe,omitempty"`
}

// CreateSessionResponse is the body of a successful session creation.
type CreateSessionResponse struct {
	ID string `json:"id"`
}

// JoinRequest is the body of POST /v1/sessions/{id}/join.
type JoinRequest struct {
	Query eq.Query `json:"query"`
}

// LeaveRequest is the body of POST /v1/sessions/{id}/leave.
type LeaveRequest struct {
	// ID is the departing query's ID (eq.Query.ID, not the session
	// name).
	ID string `json:"id"`
}

// Update is the wire shape of one processed session event
// (stream.Update).
type Update struct {
	Seq       int              `json:"seq"`
	Admitted  bool             `json:"admitted"`
	Parked    bool             `json:"parked,omitempty"`
	TeamSize  int              `json:"team_size"`
	Stats     coord.DeltaStats `json:"stats"`
	ElapsedNS int64            `json:"elapsed_ns"`
	Error     *Error           `json:"error,omitempty"`
}

// UpdateFrom converts a session update for transport.
func UpdateFrom(u stream.Update) Update {
	return Update{
		Seq:       u.Seq,
		Admitted:  u.Admitted,
		Parked:    u.Parked,
		TeamSize:  u.TeamSize,
		Stats:     u.Stats,
		ElapsedNS: u.Elapsed.Nanoseconds(),
		Error:     WireError(u.Err),
	}
}

// Totals is the wire shape of stream.Totals.
type Totals struct {
	Events    int   `json:"events"`
	Joins     int   `json:"joins"`
	Leaves    int   `json:"leaves"`
	Rejected  int   `json:"rejected"`
	Parked    int   `json:"parked"`
	Dirty     int   `json:"dirty"`
	Reused    int   `json:"reused"`
	DBQueries int64 `json:"db_queries"`
}

// TotalsFrom converts session totals for transport.
func TotalsFrom(t stream.Totals) Totals {
	return Totals{
		Events:    t.Events,
		Joins:     t.Joins,
		Leaves:    t.Leaves,
		Rejected:  t.Rejected,
		Parked:    t.Parked,
		Dirty:     t.Dirty,
		Reused:    t.Reused,
		DBQueries: t.DBQueries,
	}
}

// SessionStatus is the body of GET /v1/sessions/{id}. Result is the
// currently selected coordinating set over Queries (indices are
// positions in Queries, exactly like a batch run over that slice);
// Trace is included only when the request asks for it (?trace=1).
type SessionStatus struct {
	ID       string        `json:"id"`
	Live     int           `json:"live"`
	Parked   int           `json:"parked"`
	Queries  []eq.Query    `json:"queries"`
	Result   *coord.Result `json:"result"`
	Totals   Totals        `json:"totals"`
	Trace    *coord.Trace  `json:"trace,omitempty"`
	TeamSize int           `json:"team_size"`
}

// Health is the body of GET /healthz.
type Health struct {
	Status   string  `json:"status"` // "ok", "degraded", or "draining"
	Sessions int     `json:"sessions"`
	UptimeS  float64 `json:"uptime_s"`
	// Degraded is true while the durable backend rejects writes after a
	// disk fault; DegradedCause is the error that tripped it. Reads and
	// batch coordination keep working.
	Degraded      bool   `json:"degraded,omitempty"`
	DegradedCause string `json:"degraded_cause,omitempty"`
	// Cluster summarises this node's view of the cluster; nil when the
	// server runs standalone.
	Cluster *ClusterHealth `json:"cluster,omitempty"`
}

// ClusterHealth is the cluster slice of /healthz: enough to see at a
// glance whether this node can reach its peers.
type ClusterHealth struct {
	Self  string `json:"self"`
	Nodes int    `json:"nodes"`
	// PeersDown names peers with no live forwarding connection right
	// now; empty means every peer is reachable.
	PeersDown []string `json:"peers_down,omitempty"`
}

// Histogram is a fixed-bucket latency histogram: Counts[i] holds
// observations <= BucketsNS[i]; the final bucket is unbounded.
type Histogram struct {
	BucketsNS []int64 `json:"buckets_ns"`
	Counts    []int64 `json:"counts"`
	Count     int64   `json:"count"`
	SumNS     int64   `json:"sum_ns"`
}

// CoordinateMetrics meters the batch endpoint.
type CoordinateMetrics struct {
	// Requests counts individual coordination requests admitted.
	Requests int64 `json:"requests"`
	// Batches counts CoordinateMany dispatches; Requests/Batches is the
	// achieved cross-request batching factor.
	Batches int64 `json:"batches"`
	// Errors counts requests whose outcome was an error.
	Errors int64 `json:"errors"`
	// Rejected counts requests refused at admission (queue full or
	// draining).
	Rejected int64 `json:"rejected"`
	// DBQueries totals the exact per-request costs served.
	DBQueries int64 `json:"db_queries"`
	// Latency is the submit-to-response distribution, queue wait
	// included.
	Latency Histogram `json:"latency"`
}

// SessionCounters is one live session's slice of /metrics — notably its
// exact lifetime DBQueries.
type SessionCounters struct {
	ID        string `json:"id"`
	Live      int    `json:"live"`
	Parked    int    `json:"parked"`
	Events    int    `json:"events"`
	DBQueries int64  `json:"db_queries"`
}

// SessionMetrics meters the session resource.
type SessionMetrics struct {
	Open       int               `json:"open"`
	Created    int64             `json:"created"`
	Evicted    int64             `json:"evicted"`
	Events     int64             `json:"events"`
	DBQueries  int64             `json:"db_queries"`
	Latency    Histogram         `json:"latency"`
	PerSession []SessionCounters `json:"per_session,omitempty"`
}

// PlanCacheMetrics surfaces the store's compiled-plan cache counters.
type PlanCacheMetrics struct {
	Hits    int64   `json:"hits"`
	Misses  int64   `json:"misses"`
	Entries int64   `json:"entries"`
	HitRate float64 `json:"hit_rate"`
}

// PersistMetrics surfaces the durable backend's WAL counters: appends,
// bytes and fsyncs for the store mutation log and for the session
// event journals, plus compaction state.
type PersistMetrics struct {
	StoreAppends   int64 `json:"store_appends"`
	StoreBytes     int64 `json:"store_bytes"`
	StoreSyncs     int64 `json:"store_syncs"`
	StoreRotations int64 `json:"store_rotations"`
	SessionAppends int64 `json:"session_appends"`
	SessionBytes   int64 `json:"session_bytes"`
	SessionSyncs   int64 `json:"session_syncs"`
	OpenJournals   int   `json:"open_journals"`
	SnapshotSeq    int   `json:"snapshot_seq"`
	Compactions    int64 `json:"compactions"`
	// Degraded-mode counters: current read-only state, transitions into
	// it, probe attempts and failures, payloads queued for the next
	// successful probe, and auto-compactions that failed without
	// failing an ack.
	Degraded        bool  `json:"degraded,omitempty"`
	DegradeEvents   int64 `json:"degrade_events,omitempty"`
	Probes          int64 `json:"probes,omitempty"`
	ProbeFailures   int64 `json:"probe_failures,omitempty"`
	PendingAppends  int   `json:"pending_appends,omitempty"`
	CompactFailures int64 `json:"compact_failures,omitempty"`
}

// Metrics is the body of GET /metrics.
type Metrics struct {
	UptimeS    float64           `json:"uptime_s"`
	Coordinate CoordinateMetrics `json:"coordinate"`
	Sessions   SessionMetrics    `json:"sessions"`
	PlanCache  *PlanCacheMetrics `json:"plan_cache,omitempty"`
	Persist    *PersistMetrics   `json:"persist,omitempty"`
	Cluster    *ClusterMetrics   `json:"cluster,omitempty"`
	Admission  *AdmissionMetrics `json:"admission,omitempty"`
}

// TenantCounters is one tenant's admission and scheduling counters
// inside /metrics.
type TenantCounters struct {
	Tenant   string `json:"tenant"`
	Admitted int64  `json:"admitted"`
	// Throttled is total rejections; the Throttled* fields break it
	// down by budget dimension.
	Throttled         int64 `json:"throttled"`
	ThrottledRate     int64 `json:"throttled_rate,omitempty"`
	ThrottledInFlight int64 `json:"throttled_in_flight,omitempty"`
	ThrottledBudget   int64 `json:"throttled_budget,omitempty"`
	InFlight          int   `json:"in_flight"`
	// QueueDepth is the tenant's current backlog in the fair batcher.
	QueueDepth int `json:"queue_depth"`
	// DBQueriesSpent is the tenant's lifetime exact database-query
	// spend (Result.DBQueries metering).
	DBQueriesSpent int64 `json:"db_queries_spent"`
	// Dispatched counts this tenant's requests dispatched by the fair
	// batcher; ShareCounts[i] counts the dispatches in which the
	// tenant's share of the batch fell in the i-th decile ((0–10%],
	// (10–20%], …), the fairness histogram.
	Dispatched  int64   `json:"dispatched,omitempty"`
	ShareCounts []int64 `json:"share_counts,omitempty"`
}

// AdmissionMetrics is the per-tenant admission block of /metrics,
// present only when the server runs with an admission policy.
type AdmissionMetrics struct {
	Admitted  int64            `json:"admitted"`
	Throttled int64            `json:"throttled"`
	Tenants   []TenantCounters `json:"tenants,omitempty"`
}

// TenantStatus is one tenant's entry in GET /v1/tenants: its effective
// policy plus live accounting.
type TenantStatus struct {
	Tenant string           `json:"tenant"`
	Policy admission.Policy `json:"policy"`
	// InFlight is currently admitted, not yet finished work;
	// QueueDepth is the tenant's backlog in the fair batcher.
	InFlight   int   `json:"in_flight"`
	QueueDepth int   `json:"queue_depth"`
	Admitted   int64 `json:"admitted"`
	Throttled  int64 `json:"throttled"`
	// DBQueriesSpent is lifetime exact spend; DBBalance is the rolling
	// budget balance as of the last accounting touch (negative while a
	// post-paid overdraft refills).
	DBQueriesSpent int64   `json:"db_queries_spent"`
	DBBalance      float64 `json:"db_balance,omitempty"`
}

// TenantsStatus is the body of GET /v1/tenants. Enabled is false (and
// Tenants empty) when the server runs without an admission policy.
type TenantsStatus struct {
	Enabled bool           `json:"enabled"`
	Tenants []TenantStatus `json:"tenants,omitempty"`
}

// ClusterNode is one ring member as /v1/cluster reports it.
type ClusterNode struct {
	Name string `json:"name"`
	// Addr is the node's binary wire address — the address peers forward
	// over and cluster-aware clients dial.
	Addr string `json:"addr"`
	// Self marks the node serving this response.
	Self bool `json:"self,omitempty"`
	// Connected reports whether this node currently holds a live
	// forwarding connection to the peer (always false for Self).
	Connected bool `json:"connected,omitempty"`
}

// RelationPlacement names the column whose value places a relation's
// rows — and the requests that pin it — on the ring, mirroring
// db.ShardedInstance's per-relation hash column.
type RelationPlacement struct {
	Relation string `json:"relation"`
	Column   int    `json:"column"`
}

// ClusterStatus is the body of GET /v1/cluster: everything a
// cluster-aware client needs to rebuild this node's ring — membership,
// virtual-node count and relation placements are deterministic, so two
// nodes reporting the same Version hold byte-identical rings.
type ClusterStatus struct {
	Enabled bool   `json:"enabled"`
	Self    string `json:"self,omitempty"`
	// VirtualNodes is the per-node virtual point count the ring was
	// built with.
	VirtualNodes int `json:"virtual_nodes,omitempty"`
	// Version fingerprints membership + virtual-node count; it changes
	// iff the ring changes.
	Version   string              `json:"version,omitempty"`
	Nodes     []ClusterNode       `json:"nodes,omitempty"`
	Relations []RelationPlacement `json:"relations,omitempty"`
}

// PeerMetrics is one peer's slice of ClusterMetrics.
type PeerMetrics struct {
	Name      string `json:"name"`
	Connected bool   `json:"connected"`
	// Forwards counts requests this node forwarded to the peer;
	// Failures counts forwards that failed before a reply arrived.
	Forwards int64 `json:"forwards"`
	Failures int64 `json:"failures,omitempty"`
}

// ClusterMetrics is the cluster slice of /metrics.
type ClusterMetrics struct {
	Self  string `json:"self"`
	Nodes int    `json:"nodes"`
	// ForwardsSent/ForwardsReceived count session ops and batch slices
	// crossing node boundaries in each direction; RouteMoved counts
	// forwarded requests this node refused because it does not own the
	// target.
	ForwardsSent     int64 `json:"forwards_sent"`
	ForwardsReceived int64 `json:"forwards_received"`
	ForwardFailures  int64 `json:"forward_failures,omitempty"`
	RouteMoved       int64 `json:"route_moved,omitempty"`
	// ScatterBatches counts CoordinateMany calls that touched more than
	// one node; FanoutCounts[i] counts batches that touched i+1 nodes
	// (the last bucket absorbs larger fan-outs).
	ScatterBatches int64         `json:"scatter_batches"`
	FanoutCounts   []int64       `json:"fanout_counts,omitempty"`
	Peers          []PeerMetrics `json:"peers,omitempty"`
}

// RecoveryStatus is the body of GET /v1/recovery: what this server
// process replayed from its durable backend at startup. Enabled is
// false (and everything else zero) when the server runs in-memory.
type RecoveryStatus struct {
	Enabled bool   `json:"enabled"`
	DataDir string `json:"data_dir,omitempty"`
	// SnapshotSeq/SnapshotFrames describe the snapshot the store was
	// restored from; WALFrames/WALSegments the mutation log replayed on
	// top of it.
	SnapshotSeq    int  `json:"snapshot_seq,omitempty"`
	SnapshotFrames int  `json:"snapshot_frames,omitempty"`
	WALFrames      int  `json:"wal_frames,omitempty"`
	WALSegments    int  `json:"wal_segments,omitempty"`
	TornTail       bool `json:"torn_tail,omitempty"`
	// Sessions/SessionEvents count the session journals replayed;
	// RecoveredSessions names them.
	Sessions          int      `json:"sessions,omitempty"`
	SessionEvents     int      `json:"session_events,omitempty"`
	SessionTornTails  int      `json:"session_torn_tails,omitempty"`
	DurationMS        int64    `json:"duration_ms,omitempty"`
	RecoveredSessions []string `json:"recovered_sessions,omitempty"`
	// Degraded/DegradedCause mirror the live degraded-mode state at the
	// time of the request (not a startup property; surfaced here so the
	// recovery endpoint tells the whole durability story).
	Degraded      bool   `json:"degraded,omitempty"`
	DegradedCause string `json:"degraded_cause,omitempty"`
}

// ErrorEnvelope is the body of every non-2xx response.
type ErrorEnvelope struct {
	Error *Error `json:"error"`
}

// Errf builds a wire error with an explicit code.
func Errf(code, format string, args ...any) *Error {
	return &Error{Code: code, Message: fmt.Sprintf(format, args...)}
}
