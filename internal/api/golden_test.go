package api

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"entangled/internal/admission"
	"entangled/internal/coord"
	"entangled/internal/eq"
	"entangled/internal/stream"
)

var update = flag.Bool("update", false, "rewrite golden files")

// golden compares v's indented JSON encoding with testdata/<name>.json
// byte for byte; `go test ./internal/api -update` rewrites the files.
// These payloads ARE the HTTP protocol: a diff here is a wire-format
// change and must be deliberate.
func golden(t *testing.T, name string, v any) {
	t.Helper()
	got, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	path := filepath.Join("testdata", name+".json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/api -update` to create it)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("payload %s drifted from golden file:\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
	// Every payload must round-trip through its own type.
	back := newOf(v)
	if err := json.Unmarshal(got, back); err != nil {
		t.Fatalf("%s: decoding golden payload: %v", name, err)
	}
	again, err := json.MarshalIndent(back, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(append(again, '\n'), got) {
		t.Fatalf("%s: decode/re-encode not stable:\n%s\nvs\n%s", name, again, got)
	}
}

// newOf returns a fresh pointer to v's type for decoding.
func newOf(v any) any {
	switch v.(type) {
	case CoordinateRequest:
		return &CoordinateRequest{}
	case CoordinateResponse:
		return &CoordinateResponse{}
	case CreateSessionRequest:
		return &CreateSessionRequest{}
	case Update:
		return &Update{}
	case SessionStatus:
		return &SessionStatus{}
	case ErrorEnvelope:
		return &ErrorEnvelope{}
	case Metrics:
		return &Metrics{}
	case RecoveryStatus:
		return &RecoveryStatus{}
	case ClusterStatus:
		return &ClusterStatus{}
	case Health:
		return &Health{}
	case TenantsStatus:
		return &TenantsStatus{}
	default:
		panic("add the type to newOf")
	}
}

func sampleQuery() eq.Query {
	return eq.Query{
		ID:   "u1",
		Post: []eq.Atom{eq.NewAtom("R", eq.C("U2"), eq.V("y"))},
		Head: []eq.Atom{eq.NewAtom("R", eq.C("U1"), eq.V("x"))},
		Body: []eq.Atom{eq.NewAtom("T", eq.V("x"), eq.C("c0"))},
	}
}

func TestGoldenCoordinateRequest(t *testing.T) {
	golden(t, "coordinate_request", CoordinateRequest{
		Requests: []Request{{ID: "r1", Queries: []eq.Query{sampleQuery()}}},
	})
}

func TestGoldenCoordinateResponse(t *testing.T) {
	golden(t, "coordinate_response", CoordinateResponse{
		Responses: []Response{
			{ID: "r1", Result: &coord.Result{
				Set:       []int{0, 1},
				Values:    map[int]map[string]eq.Value{0: {"x": "t0"}, 1: {"x": "t0", "y": "t0"}},
				DBQueries: 2,
			}},
			{ID: "r2", Error: &Error{Code: coord.CodeUnsafe, Message: "coord: query set is not safe: unsafe queries [0]"}},
		},
	})
}

func TestGoldenCreateSessionRequest(t *testing.T) {
	golden(t, "create_session_request", CreateSessionRequest{ID: "alpha", ParkUnsafe: true})
}

func TestGoldenUpdate(t *testing.T) {
	golden(t, "session_update", UpdateFrom(stream.Update{
		Seq:      3,
		Admitted: true,
		TeamSize: 2,
		Stats:    coord.DeltaStats{Slot: 2, Components: 2, Dirty: 1, Reused: 1, DBQueries: 2},
		Elapsed:  1500 * time.Microsecond,
	}))
}

func TestGoldenSessionStatus(t *testing.T) {
	golden(t, "session_status", SessionStatus{
		ID:      "alpha",
		Live:    1,
		Queries: []eq.Query{sampleQuery()},
		Result: &coord.Result{
			Set:       []int{0},
			Values:    map[int]map[string]eq.Value{0: {"x": "t0", "y": "t0"}},
			DBQueries: 2,
		},
		Totals:   TotalsFrom(stream.Totals{Events: 4, Joins: 3, Leaves: 1, Dirty: 4, Reused: 2, DBQueries: 9}),
		TeamSize: 1,
		Trace: &coord.Trace{Components: []coord.ComponentEvent{
			{Members: []int{0}, Set: []int{0}, Status: "grounded", SetSize: 1, Combined: "T(q0.x, 'c0')"},
		}},
	})
}

func TestGoldenErrorEnvelope(t *testing.T) {
	golden(t, "error_envelope", ErrorEnvelope{
		Error: &Error{Code: coord.CodeUnsafeArrival, Message: "coord: arrival would make the query set unsafe u9: would make queries [1 4] unsafe"},
	})
}

func TestGoldenMetrics(t *testing.T) {
	golden(t, "metrics", Metrics{
		UptimeS: 12.5,
		Coordinate: CoordinateMetrics{
			Requests: 128, Batches: 9, Errors: 1, Rejected: 2, DBQueries: 640,
			Latency: Histogram{BucketsNS: []int64{50_000, 100_000}, Counts: []int64{100, 20, 8}, Count: 128, SumNS: 7_300_000},
		},
		Sessions: SessionMetrics{
			Open: 1, Created: 2, Evicted: 1, Events: 52, DBQueries: 104,
			Latency:    Histogram{BucketsNS: []int64{50_000, 100_000}, Counts: []int64{40, 10, 2}, Count: 52, SumNS: 2_100_000},
			PerSession: []SessionCounters{{ID: "alpha", Live: 12, Parked: 1, Events: 52, DBQueries: 104}},
		},
		PlanCache: &PlanCacheMetrics{Hits: 700, Misses: 9, Entries: 9, HitRate: 0.987306064880113},
		Persist: &PersistMetrics{
			StoreAppends: 20002, StoreBytes: 1_200_000, StoreSyncs: 3, StoreRotations: 1,
			SessionAppends: 52, SessionBytes: 9_800, SessionSyncs: 52,
			OpenJournals: 1, SnapshotSeq: 2, Compactions: 1,
		},
		Cluster: &ClusterMetrics{
			Self: "n1", Nodes: 3,
			ForwardsSent: 40, ForwardsReceived: 25, ForwardFailures: 1, RouteMoved: 2,
			ScatterBatches: 6, FanoutCounts: []int64{90, 4, 6, 0},
			Peers: []PeerMetrics{
				{Name: "n2", Connected: true, Forwards: 30},
				{Name: "n3", Connected: false, Forwards: 10, Failures: 1},
			},
		},
		Admission: &AdmissionMetrics{
			Admitted: 120, Throttled: 8,
			Tenants: []TenantCounters{
				{Tenant: "default", Admitted: 40, InFlight: 1, DBQueriesSpent: 200, Dispatched: 40,
					ShareCounts: []int64{0, 2, 6, 10, 8, 6, 4, 2, 1, 1}},
				{Tenant: "hot", Admitted: 80, Throttled: 8, ThrottledRate: 6, ThrottledBudget: 2,
					InFlight: 2, QueueDepth: 3, DBQueriesSpent: 512, Dispatched: 80,
					ShareCounts: []int64{0, 0, 0, 0, 0, 10, 20, 30, 15, 5}},
			},
		},
	})
}

func TestGoldenClusterStatus(t *testing.T) {
	golden(t, "cluster_status", ClusterStatus{
		Enabled:      true,
		Self:         "n1",
		VirtualNodes: 64,
		Version:      "ring-9f86d081",
		Nodes: []ClusterNode{
			{Name: "n1", Addr: "10.0.0.1:9101", Self: true},
			{Name: "n2", Addr: "10.0.0.2:9101", Connected: true},
			{Name: "n3", Addr: "10.0.0.3:9101"},
		},
		Relations: []RelationPlacement{{Relation: "T", Column: 1}},
	})
}

func TestGoldenClusterHealth(t *testing.T) {
	golden(t, "health_cluster", Health{
		Status:   "ok",
		Sessions: 4,
		UptimeS:  99.5,
		Cluster:  &ClusterHealth{Self: "n2", Nodes: 3, PeersDown: []string{"n3"}},
	})
}

func TestGoldenRouteMovedEnvelope(t *testing.T) {
	golden(t, "error_route_moved", ErrorEnvelope{
		Error: &Error{
			Code:    CodeRouteMoved,
			Message: "cluster: route moved: session alpha is owned by n2",
			Owner:   "n2",
		},
	})
}

func TestGoldenRecoveryStatus(t *testing.T) {
	golden(t, "recovery_status", RecoveryStatus{
		Enabled:           true,
		DataDir:           "/var/lib/entangled",
		SnapshotSeq:       2,
		SnapshotFrames:    20002,
		WALFrames:         17,
		WALSegments:       1,
		TornTail:          true,
		Sessions:          2,
		SessionEvents:     52,
		SessionTornTails:  1,
		DurationMS:        8,
		RecoveredSessions: []string{"alpha", "beta"},
	})
}

func TestGoldenThrottledEnvelope(t *testing.T) {
	golden(t, "error_throttled", ErrorEnvelope{
		Error: &Error{
			Code:         CodeThrottled,
			Message:      `admission: tenant "hot" throttled (rate)`,
			RetryAfterMS: 100,
		},
	})
}

func TestGoldenTenantsStatus(t *testing.T) {
	golden(t, "tenants_status", TenantsStatus{
		Enabled: true,
		Tenants: []TenantStatus{
			{
				Tenant:         "default",
				Policy:         admission.Policy{Weight: 1},
				InFlight:       1,
				Admitted:       40,
				DBQueriesSpent: 200,
			},
			{
				Tenant: "hot",
				Policy: admission.Policy{
					Rate: 50, Burst: 50, MaxInFlight: 8,
					DBQueriesPerSec: 200, DBQueriesBurst: 200, Weight: 1,
				},
				InFlight:       2,
				QueueDepth:     3,
				Admitted:       80,
				Throttled:      8,
				DBQueriesSpent: 512,
				DBBalance:      -44.5,
			},
		},
	})
}

// TestErrorRoundTrip checks the typed-error contract: the sentinel
// survives WireError -> Err across every coded error, and unknown
// codes degrade to plain messages.
func TestErrorRoundTrip(t *testing.T) {
	for _, err := range []error{
		coord.ErrUnsafeArrival,
		coord.ErrTooManyQueries,
		coord.ErrUnsafe,
		coord.ErrNoQuery,
		coord.ErrNotUnique,
		stream.ErrDuplicateID,
		stream.ErrUnknownID,
		ErrRouteMoved,
		ErrPeerUnavailable,
		admission.ErrThrottled,
	} {
		we := WireError(err)
		if we == nil || we.Code == CodeInternal {
			t.Fatalf("%v: wire error %+v lost its code", err, we)
		}
		back := we.Err()
		if !errors.Is(back, err) {
			t.Fatalf("decoded error %v does not wrap %v", back, err)
		}
	}
	if (*Error)(nil).Err() != nil {
		t.Fatal("nil wire error decoded to a non-nil error")
	}
	unknown := (&Error{Code: "mystery", Message: "huh"}).Err()
	if unknown == nil || unknown.Error() != "huh" {
		t.Fatalf("unknown code decoded badly: %v", unknown)
	}
}
