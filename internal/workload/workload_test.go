package workload

import (
	"math/rand"
	"testing"

	"entangled/internal/db"
	"entangled/internal/netgen"
)

func TestUserTable(t *testing.T) {
	in := db.NewInstance()
	r := UserTable(in, 100)
	if r.Len() != 100 || r.Arity() != 2 {
		t.Fatalf("table shape: %d x %d", r.Len(), r.Arity())
	}
	// Every generated body value is present.
	sat, err := in.Satisfiable(bodyFor(42, 100))
	if err != nil || !sat {
		t.Fatalf("body must be satisfiable: %v %v", sat, err)
	}
}

func TestListQueriesShape(t *testing.T) {
	qs := ListQueries(5, 100)
	if len(qs) != 5 {
		t.Fatalf("len = %d", len(qs))
	}
	for i, q := range qs {
		if len(q.Head) != 1 || len(q.Body) != 1 {
			t.Fatalf("query %d shape: %v", i, q)
		}
		if i < 4 && len(q.Post) != 1 {
			t.Fatalf("query %d needs a post", i)
		}
		if i == 4 && len(q.Post) != 0 {
			t.Fatal("last query must be free")
		}
	}
	// Post of i names user i+1.
	if qs[0].Post[0].Args[0].Const() != User(1) {
		t.Fatalf("post target: %v", qs[0].Post[0])
	}
}

func TestGraphQueriesFollowStructure(t *testing.T) {
	g := netgen.Cycle(4)
	qs := GraphQueries(g, 50)
	for i, q := range qs {
		if len(q.Post) != 1 {
			t.Fatalf("cycle node %d has one successor: %v", i, q.Post)
		}
		want := User((i + 1) % 4)
		if q.Post[0].Args[0].Const() != want {
			t.Fatalf("node %d posts to %v, want %v", i, q.Post[0].Args[0], want)
		}
	}
}

func TestFlightsTableDistinctPairs(t *testing.T) {
	in := db.NewInstance()
	FlightsTable(in, 100, 10)
	rows, err := in.Project("Flights", []int{1, 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("distinct pairs = %d, want 10", len(rows))
	}
	in2 := db.NewInstance()
	FlightsTable(in2, 100, 100)
	rows, err = in2.Project("Flights", []int{1, 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 100 {
		t.Fatalf("unique flights: distinct pairs = %d, want 100", len(rows))
	}
}

func TestCompleteFriends(t *testing.T) {
	in := db.NewInstance()
	f := CompleteFriends(in, 5)
	if f.Len() != 20 {
		t.Fatalf("rows = %d, want n(n-1)", f.Len())
	}
}

func TestGraphFriends(t *testing.T) {
	in := db.NewInstance()
	g := netgen.Chain(3)
	f := GraphFriends(in, g)
	if f.Len() != 2 {
		t.Fatalf("rows = %d", f.Len())
	}
}

func TestFlightQueriesAllWildcard(t *testing.T) {
	qs := FlightQueries(3)
	for _, q := range qs {
		for _, p := range q.Coord {
			if !p.Any {
				t.Fatal("worst-case workload is all-wildcard")
			}
		}
		if len(q.Partners) != 1 || !q.Partners[0].AnyFriend {
			t.Fatal("one friend slot per user")
		}
	}
}

func TestRandomFlightQueriesUsers(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	qs := RandomFlightQueries(6, 3, 0.5, rng)
	if len(qs) != 6 {
		t.Fatalf("len = %d", len(qs))
	}
	for i, q := range qs {
		if q.User != User(i) {
			t.Fatalf("user %d = %v", i, q.User)
		}
		for _, p := range q.Partners {
			if !p.AnyFriend && p.Name == q.User {
				t.Fatal("a user cannot partner with itself")
			}
		}
	}
}

func TestRandomSafeQueriesSafety(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	for trial := 0; trial < 20; trial++ {
		qs := RandomSafeQueries(6, 10, 0.4, 0.5, rng)
		// One head per distinct user name keeps the set safe; verify the
		// invariant directly: no two queries share a head user.
		seen := map[string]bool{}
		for _, q := range qs {
			u := string(q.Head[0].Args[0].Const())
			if seen[u] {
				t.Fatal("duplicate head user")
			}
			seen[u] = true
		}
	}
}
