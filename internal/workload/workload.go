package workload

import (
	"math/rand"
	"strconv"
	"time"

	"entangled/internal/consistent"
	"entangled/internal/db"
	"entangled/internal/eq"
	"entangled/internal/graph"
	"entangled/internal/netgen"
)

// UserTable creates the queried table of the §6.1 experiments: a
// two-column relation T(key, val) with rows rows, indexed on val so each
// query body grounds through an index probe, like the MySQL setup. Every
// generated body matches at least one tuple (the paper's "most
// demanding" setting: nothing is pruned).
func UserTable(inst *db.Instance, rows int) *db.Relation {
	t := inst.CreateRelation("T", "key", "val")
	fillUserTable(t.Insert, rows)
	t.BuildIndex(1)
	return t
}

// UserTableSharded is UserTable for a hash-partitioned store: the same
// T(key, val) contents, partitioned on the val column — the column
// every generated body pins to a constant — so each query routes to a
// single shard and concurrent requests spread across shard locks.
func UserTableSharded(sh *db.ShardedInstance, rows int) *db.ShardedRelation {
	t := sh.CreateRelation("T", 1, "key", "val")
	fillUserTable(t.Insert, rows)
	t.BuildIndex(1)
	return t
}

// fillUserTable writes the canonical T contents through either table
// handle, so plain and sharded stores hold identical tuples.
func fillUserTable(insert func(vals ...eq.Value), rows int) {
	for i := 0; i < rows; i++ {
		insert(eq.Value("t"+strconv.Itoa(i)), eq.Value("c"+strconv.Itoa(i)))
	}
}

// NewStore builds the serving-path store in one place: the user table
// on a plain instance for shards <= 1, or hash-partitioned across the
// given shard count, with the simulated per-query latency applied
// either way. cmd/coordserve and the ParallelBatch sweep share it so
// their plain-vs-sharded comparisons construct identical stores.
func NewStore(shards, rows int, latency time.Duration) db.Store {
	if shards > 1 {
		sh := db.NewShardedInstance(shards)
		sh.SetSimulatedLatency(latency)
		UserTableSharded(sh, rows)
		return sh
	}
	inst := db.NewInstance()
	inst.SimulatedLatency = latency
	UserTable(inst, rows)
	return inst
}

// Placement is the cluster work-placement contract for the canonical
// workload: T partitioned on its val column — the column
// UserTableSharded hashes and every generated body pins — so a
// coordserve cluster routes each single-value request to one owner.
func Placement() map[string]int { return map[string]int{"T": 1} }

// user returns the constant naming query i's user.
func user(i int) eq.Value { return eq.Value("U" + strconv.Itoa(i)) }

// bodyFor builds the simple satisfiable body T(x, c_{i mod rows}).
func bodyFor(i, rows int) []eq.Atom {
	c := eq.C(eq.Value("c" + strconv.Itoa(i%rows)))
	return []eq.Atom{eq.NewAtom("T", eq.V("x"), c)}
}

// ListQueries builds the Figure 4 workload: n queries in a list where
// query i asks to coordinate with query i+1 and the last query has no
// coordination partner. The set is safe but not unique, and there is a
// different coordinating set suffix for every position — the worst case
// for the SCC algorithm (one database query per query).
func ListQueries(n, tableRows int) []eq.Query {
	return listQueriesWith(n, func(i int) []eq.Atom { return bodyFor(i, tableRows) })
}

// ListQueriesAt builds the Figure 4 list structure with every body
// pinned to the single table value c_at: the whole request grounds
// through one value, so on a store sharded on T's val column the
// request is single-shard routable, and requests with different at
// values fan out across shards.
func ListQueriesAt(n, at int) []eq.Query {
	c := eq.C(eq.Value("c" + strconv.Itoa(at)))
	return listQueriesWith(n, func(int) []eq.Atom {
		return []eq.Atom{eq.NewAtom("T", eq.V("x"), c)}
	})
}

// listQueriesWith is the shared list-structure builder: query i asks
// to coordinate with query i+1, the last query has no partner, and
// bodyAt supplies each query's body.
func listQueriesWith(n int, bodyAt func(i int) []eq.Atom) []eq.Query {
	qs := make([]eq.Query, n)
	for i := 0; i < n; i++ {
		q := eq.Query{
			ID:   "u" + strconv.Itoa(i),
			Head: []eq.Atom{eq.NewAtom("R", eq.C(user(i)), eq.V("x"))},
			Body: bodyAt(i),
		}
		if i+1 < n {
			q.Post = []eq.Atom{eq.NewAtom("R", eq.C(user(i+1)), eq.V("y"))}
		}
		qs[i] = q
	}
	return qs
}

// GraphQueries builds a query set whose coordination structure follows
// the given directed graph (the Figure 5/6 workload uses a
// Barabási–Albert graph): query i's postconditions name the users of its
// successors. One head per user keeps the set safe; bodies are simple
// and always satisfiable.
func GraphQueries(g *graph.Digraph, tableRows int) []eq.Query {
	n := g.N()
	qs := make([]eq.Query, n)
	for i := 0; i < n; i++ {
		q := eq.Query{
			ID:   "u" + strconv.Itoa(i),
			Head: []eq.Atom{eq.NewAtom("R", eq.C(user(i)), eq.V("x"))},
			Body: bodyFor(i, tableRows),
		}
		for k, j := range g.Succ(i) {
			q.Post = append(q.Post, eq.NewAtom("R", eq.C(user(j)), eq.V("y"+strconv.Itoa(k))))
		}
		qs[i] = q
	}
	return qs
}

// ScaleFreeQueries builds the Figure 5 workload directly: a
// Barabási–Albert network of n queries with attachment parameter m.
func ScaleFreeQueries(n, m, tableRows int, rng *rand.Rand) []eq.Query {
	return GraphQueries(netgen.BarabasiAlbert(n, m, rng), tableRows)
}

// FlightSchema is the §6.2 application schema: users coordinate on a
// flight's destination and day; source and airline are personal
// preferences; Friends(user, friend) holds the social relation.
func FlightSchema() consistent.Schema {
	return consistent.Schema{
		Table:     "Flights",
		KeyCol:    0,
		CoordCols: []int{1, 2}, // destination, day
		OwnCols:   []int{3, 4}, // source, airline
		Friends:   "Friends",
	}
}

// FlightsTable populates Flights(fid, dest, day, src, airline) with rows
// tuples spread over distinctPairs distinct (dest, day) combinations.
// Figure 7 uses distinctPairs == rows (every flight unique, so the
// number of coordination options equals the table size); Figure 8 fixes
// 100 distinct pairs.
func FlightsTable(inst *db.Instance, rows, distinctPairs int) *db.Relation {
	f := inst.CreateRelation("Flights", "fid", "dest", "day", "src", "airline")
	for i := 0; i < rows; i++ {
		pair := i % distinctPairs
		f.Insert(
			eq.Value("fl"+strconv.Itoa(i)),
			eq.Value("dest"+strconv.Itoa(pair)),
			eq.Value("day"+strconv.Itoa(pair)),
			eq.Value("src"+strconv.Itoa(i%7)),
			eq.Value("air"+strconv.Itoa(i%5)),
		)
	}
	f.BuildIndex(1)
	return f
}

// CompleteFriends encodes a complete friendship graph over the n users
// named user(0..n-1) into Friends(user, friend), as in Figures 7 and 8.
func CompleteFriends(inst *db.Instance, n int) *db.Relation {
	f := inst.CreateRelation("Friends", "user", "friend")
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				f.Insert(user(i), user(j))
			}
		}
	}
	f.BuildIndex(0)
	return f
}

// GraphFriends encodes an arbitrary friendship graph into
// Friends(user, friend).
func GraphFriends(inst *db.Instance, g *graph.Digraph) *db.Relation {
	f := inst.CreateRelation("Friends", "user", "friend")
	for i := 0; i < g.N(); i++ {
		for _, j := range g.Succ(i) {
			f.Insert(user(i), user(j))
		}
	}
	f.BuildIndex(0)
	return f
}

// FlightQueries builds the Figure 7/8 query load: n users, each wanting
// to fly with any one friend, with no constraints on any attribute — the
// paper's declared worst case, where every tuple in the database
// satisfies every query and no pruning ever removes anything.
func FlightQueries(n int) []consistent.Query {
	qs := make([]consistent.Query, n)
	for i := range qs {
		qs[i] = consistent.Query{
			User:     user(i),
			Coord:    []consistent.Pref{consistent.DontCare, consistent.DontCare},
			Own:      []consistent.Pref{consistent.DontCare, consistent.DontCare},
			Partners: []consistent.Partner{consistent.Friend},
		}
	}
	return qs
}

// RandomFlightQueries builds a randomized consistent workload for
// testing: each user constrains each attribute with probability p and
// coordinates either with a random named user or with any friend.
func RandomFlightQueries(n, distinctPairs int, p float64, rng *rand.Rand) []consistent.Query {
	pref := func(stem string, count int) consistent.Pref {
		if rng.Float64() < p {
			return consistent.Is(eq.Value(stem + strconv.Itoa(rng.Intn(count))))
		}
		return consistent.DontCare
	}
	qs := make([]consistent.Query, n)
	for i := range qs {
		var partner consistent.Partner
		if rng.Float64() < 0.5 {
			partner = consistent.Friend
		} else {
			j := rng.Intn(n)
			for j == i {
				j = rng.Intn(n)
			}
			partner = consistent.With(user(j))
		}
		qs[i] = consistent.Query{
			User:     user(i),
			Coord:    []consistent.Pref{pref("dest", distinctPairs), pref("day", distinctPairs)},
			Own:      []consistent.Pref{pref("src", 7), pref("air", 5)},
			Partners: []consistent.Partner{partner},
		}
	}
	return qs
}

// RandomSafeQueries builds a randomized safe entangled query set for
// testing the SCC algorithm against the brute-force oracle: the
// coordination structure is a random graph, and each body targets a
// value that exists with probability pSat (missing values exercise the
// pruning cascade).
func RandomSafeQueries(n, tableRows int, edgeP, pSat float64, rng *rand.Rand) []eq.Query {
	g := netgen.ErdosRenyi(n, edgeP, rng)
	qs := GraphQueries(g, tableRows)
	for i := range qs {
		if rng.Float64() >= pSat {
			// Point the body at a value not present in T.
			qs[i].Body = []eq.Atom{eq.NewAtom("T", eq.V("x"), eq.C(eq.Value("missing"+strconv.Itoa(i))))}
		}
	}
	return qs
}

// User exposes the user-naming convention to other packages (examples,
// experiment drivers).
func User(i int) eq.Value { return user(i) }
