// Package workload builds the query sets and database contents of the
// paper's experimental evaluation (§6): the list-structure and
// scale-free-network workloads driving the SCC Coordination Algorithm
// (Figures 4-6) and the flight-coordination workloads driving the
// Consistent Coordination Algorithm (Figures 7-8), plus randomized
// workloads used by the test suite.
//
// For the streaming paths it also generates arrival sequences:
// Arrivals produces deterministic join/leave event streams (steady,
// bursty, or churn-heavy) over backward-chain scenarios (ChainQuery),
// consumed by stream.Session, cmd/coordserve -stream and the
// BenchmarkStream* family. Arrival is stream-agnostic so this package
// stays below internal/stream in the import graph.
package workload
