// Package workload builds the query sets and database contents of the
// paper's experimental evaluation (§6): the list-structure and
// scale-free-network workloads driving the SCC Coordination Algorithm
// (Figures 4-6) and the flight-coordination workloads driving the
// Consistent Coordination Algorithm (Figures 7-8), plus randomized
// workloads used by the test suite.
package workload
