package workload

import (
	"math"
	"math/rand"
	"strconv"

	"entangled/internal/db"
	"entangled/internal/eq"
)

// UserTableMutations is the mutation-stream form of UserTable /
// UserTableSharded: the same canonical T(key, val) contents as a
// replayable db.Mutation sequence (create, rows, index on val, with
// val as the hash column). Applying it to a plain or sharded store —
// or a durable persist backend over either — builds the exact store
// NewStore builds, which is how coordserve populates a fresh data
// directory.
func UserTableMutations(rows int) []db.Mutation {
	ms := make([]db.Mutation, 0, rows+2)
	ms = append(ms, db.MCreate("T", 1, "key", "val"))
	for i := 0; i < rows; i++ {
		ms = append(ms, db.MInsert("T", eq.Value("t"+strconv.Itoa(i)), eq.Value("c"+strconv.Itoa(i))))
	}
	return append(ms, db.MIndex("T", 1))
}

// SkewOptions configures the deterministic skewed-data generator: the
// ROADMAP's missing test fuel for durability property tests and
// benchmarks. Real coordination workloads are not uniform — a few
// relations hold most tuples and a few values receive most rows — and
// uniform fixtures hide bugs (and flatter benchmarks) that skew
// exposes: snapshot streams dominated by one relation, hash shards
// with hot parts, WAL segments rotating mid-relation.
type SkewOptions struct {
	// Relations is the number of generated relations S0..S{n-1}.
	// Zero means 4.
	Relations int
	// MaxRows is the largest relation's row count; relation i holds
	// ~MaxRows/(i+1)^Skew rows (Zipf-ranked sizes, always >= 1).
	// Zero means 1000.
	MaxRows int
	// Skew is the Zipf exponent for both the size ranking and the
	// hot-key column. Zero means 1.2; must be > 1 for the hot-key
	// distribution.
	Skew float64
	// HotKeys is the number of distinct values in each relation's val
	// column; a Zipf draw concentrates most rows on the first few.
	// Zero means 32.
	HotKeys int
	// Seed fixes the draw: equal options generate byte-identical
	// mutation streams.
	Seed int64
}

func (o SkewOptions) withDefaults() SkewOptions {
	if o.Relations <= 0 {
		o.Relations = 4
	}
	if o.MaxRows <= 0 {
		o.MaxRows = 1000
	}
	if o.Skew <= 1 {
		o.Skew = 1.2
	}
	if o.HotKeys <= 0 {
		o.HotKeys = 32
	}
	return o
}

// ZipfRowCounts returns the deterministic Zipf-ranked size of each of
// n relations: counts[i] = max(1, maxRows/(i+1)^s).
func ZipfRowCounts(n, maxRows int, s float64) []int {
	counts := make([]int, n)
	for i := range counts {
		c := int(float64(maxRows) / math.Pow(float64(i+1), s))
		if c < 1 {
			c = 1
		}
		counts[i] = c
	}
	return counts
}

// SkewedMutations generates a replayable mutation stream building
// Relations relations S0..S{n-1} with Zipf-ranked sizes; each row's
// val column (the hash column, indexed) is a Zipf draw over HotKeys
// distinct values, so a handful of hot values carry most rows. The
// stream is a pure function of the options — the property tests replay
// it into durable and in-memory stores and compare answers exactly.
func SkewedMutations(o SkewOptions) []db.Mutation {
	o = o.withDefaults()
	rng := rand.New(rand.NewSource(o.Seed))
	zipf := rand.NewZipf(rng, o.Skew, 1, uint64(o.HotKeys-1))
	var ms []db.Mutation
	for i, rows := range ZipfRowCounts(o.Relations, o.MaxRows, o.Skew) {
		name := "S" + strconv.Itoa(i)
		ms = append(ms, db.MCreate(name, 1, "key", "val"))
		for j := 0; j < rows; j++ {
			hot := eq.Value("h" + strconv.FormatUint(zipf.Uint64(), 10))
			ms = append(ms, db.MInsert(name, eq.Value(name+"k"+strconv.Itoa(j)), hot))
		}
		ms = append(ms, db.MIndex(name, 1))
	}
	return ms
}

// HotBodies returns n single-atom query bodies over the skewed
// relations, biased toward the hot values the same way the data is:
// body k probes relation S{k mod Relations} at a fresh Zipf draw.
// Deterministic for equal options and n.
func HotBodies(o SkewOptions, n int) [][]eq.Atom {
	o = o.withDefaults()
	rng := rand.New(rand.NewSource(o.Seed + 1))
	zipf := rand.NewZipf(rng, o.Skew, 1, uint64(o.HotKeys-1))
	out := make([][]eq.Atom, n)
	for k := range out {
		name := "S" + strconv.Itoa(k%o.Relations)
		hot := eq.Value("h" + strconv.FormatUint(zipf.Uint64(), 10))
		out[k] = []eq.Atom{eq.NewAtom(name, eq.V("x"), eq.C(hot))}
	}
	return out
}
