package workload

import (
	"reflect"
	"testing"

	"entangled/internal/db"
)

func TestUserTableMutationsMatchesNewStore(t *testing.T) {
	const rows = 200
	for _, shards := range []int{1, 3} {
		direct := NewStore(shards, rows, 0)
		var replayed db.WriteStore
		if shards > 1 {
			replayed = db.NewShardedInstance(shards)
		} else {
			replayed = db.NewInstance()
		}
		if err := db.ApplyAll(replayed, UserTableMutations(rows)); err != nil {
			t.Fatal(err)
		}
		for _, at := range []int{0, 7, rows - 1} {
			body := bodyFor(at, rows)
			want, err := direct.SolveAll(body, 0)
			if err != nil {
				t.Fatal(err)
			}
			got, err := replayed.SolveAll(body, 0)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("shards=%d at=%d: replayed store answers differ", shards, at)
			}
		}
		if !reflect.DeepEqual(replayed.Domain(), direct.Domain()) {
			t.Fatalf("shards=%d: domains differ", shards)
		}
	}
}

func TestSkewedMutationsDeterministic(t *testing.T) {
	o := SkewOptions{Relations: 3, MaxRows: 300, Seed: 42}
	a, b := SkewedMutations(o), SkewedMutations(o)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("equal options generated different streams")
	}
	o2 := o
	o2.Seed = 43
	if reflect.DeepEqual(a, SkewedMutations(o2)) {
		t.Fatal("different seeds generated identical streams")
	}
	if !reflect.DeepEqual(HotBodies(o, 10), HotBodies(o, 10)) {
		t.Fatal("HotBodies is not deterministic")
	}
}

func TestSkewedMutationsShapes(t *testing.T) {
	o := SkewOptions{Relations: 4, MaxRows: 400, Skew: 1.5, HotKeys: 16, Seed: 7}
	counts := ZipfRowCounts(o.Relations, o.MaxRows, o.Skew)
	if counts[0] != 400 {
		t.Fatalf("largest relation has %d rows", counts[0])
	}
	for i := 1; i < len(counts); i++ {
		if counts[i] > counts[i-1] || counts[i] < 1 {
			t.Fatalf("sizes not Zipf-ranked: %v", counts)
		}
	}
	st := db.NewInstance()
	if err := db.ApplyAll(st, SkewedMutations(o)); err != nil {
		t.Fatal(err)
	}
	schema := st.Schema()
	if len(schema) != o.Relations {
		t.Fatalf("built %d relations, want %d", len(schema), o.Relations)
	}
	// The hot-key column is genuinely skewed: in relation S0, the most
	// frequent value covers well over its uniform share of rows.
	r, _ := st.Relation("S0")
	freq := map[string]int{}
	if err := r.Tuples(func(tp db.Tuple) error {
		freq[string(tp[1])]++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	max := 0
	for _, n := range freq {
		if n > max {
			max = n
		}
	}
	if uniform := counts[0] / o.HotKeys; max <= 2*uniform {
		t.Fatalf("top value covers %d of %d rows — not skewed (uniform share %d)", max, counts[0], uniform)
	}
	// And the bodies probe existing relations with answers on hot values.
	bodies := HotBodies(o, 8)
	answered := 0
	for _, body := range bodies {
		ok, err := st.Satisfiable(body)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			answered++
		}
	}
	if answered == 0 {
		t.Fatal("no hot body is satisfiable")
	}
}
