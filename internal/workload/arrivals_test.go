package workload

import (
	"reflect"
	"testing"

	"entangled/internal/coord"
	"entangled/internal/eq"
)

// TestArrivalsDeterministic: same seed, same sequence; different seed,
// different sequence (for every pattern).
func TestArrivalsDeterministic(t *testing.T) {
	for _, p := range Patterns() {
		a := Arrivals(p, 64, 16, 3)
		b := Arrivals(p, 64, 16, 3)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: not deterministic under a seed", p)
		}
		if len(a) != 64 {
			t.Fatalf("%s: %d arrivals", p, len(a))
		}
	}
	if reflect.DeepEqual(Arrivals(Churn, 64, 16, 3), Arrivals(Churn, 64, 16, 4)) {
		t.Fatal("churn: seeds 3 and 4 generated identical sequences")
	}
}

// TestArrivalsAdmissible replays each pattern and checks the generator's
// contract: joins are unique IDs forming a safe set at every prefix,
// leaves always name a live query, and gaps are positive.
func TestArrivalsAdmissible(t *testing.T) {
	for _, p := range Patterns() {
		live := map[string]eq.Query{}
		for i, a := range Arrivals(p, 96, 16, 11) {
			if a.Gap <= 0 {
				t.Fatalf("%s[%d]: gap %v", p, i, a.Gap)
			}
			if a.Leave {
				if _, ok := live[a.ID]; !ok {
					t.Fatalf("%s[%d]: leave of absent %s", p, i, a.ID)
				}
				delete(live, a.ID)
				continue
			}
			if _, dup := live[a.Query.ID]; dup {
				t.Fatalf("%s[%d]: duplicate join %s", p, i, a.Query.ID)
			}
			live[a.Query.ID] = a.Query
			var qs []eq.Query
			for _, q := range live {
				qs = append(qs, q)
			}
			if !coord.IsSafe(qs) {
				t.Fatalf("%s[%d]: prefix is unsafe after %s", p, i, a.Query.ID)
			}
		}
	}
}

// TestChurnHasLeaves: the churn pattern actually generates departures,
// and the join-only patterns do not.
func TestChurnHasLeaves(t *testing.T) {
	leaves := func(p Pattern) int {
		n := 0
		for _, a := range Arrivals(p, 100, 16, 1) {
			if a.Leave {
				n++
			}
		}
		return n
	}
	if leaves(Churn) == 0 {
		t.Fatal("churn generated no departures")
	}
	if leaves(Steady) != 0 || leaves(Bursty) != 0 {
		t.Fatal("join-only patterns generated departures")
	}
}

// TestBurstyGaps: bursty traffic alternates short in-burst gaps with
// long pauses; steady traffic is uniform.
func TestBurstyGaps(t *testing.T) {
	var short, long int
	for _, a := range Arrivals(Bursty, 64, 16, 2) {
		if a.Gap < 0.5 {
			short++
		} else {
			long++
		}
	}
	if short == 0 || long == 0 {
		t.Fatalf("bursty gaps not bimodal: %d short, %d long", short, long)
	}
	for _, a := range Arrivals(Steady, 64, 16, 2) {
		if a.Gap != 1 {
			t.Fatalf("steady gap %v", a.Gap)
		}
	}
}
