package workload

import (
	"fmt"
	"math/rand"
	"strconv"

	"entangled/internal/eq"
)

// ChainQuery builds one link of a backward coordination chain: user
// (cluster, i) asks to coordinate with the already-present user
// (cluster, i-1); the chain head (i == 0) has no postcondition. Backward
// chains are the streaming-friendly serving shape — a new tail extends
// its scenario without touching any existing component's reachable set,
// so an arrival's dirty region is one component regardless of session
// size. Bodies pin the shared table value c_{cluster mod tableRows}, so
// each scenario grounds through one value (and routes to one shard on a
// val-partitioned store).
func ChainQuery(cluster, i, tableRows int) eq.Query {
	q := eq.Query{
		ID:   fmt.Sprintf("c%d.u%d", cluster, i),
		Head: []eq.Atom{eq.NewAtom("R", eq.C(chainUser(cluster, i)), eq.V("x"))},
		Body: []eq.Atom{eq.NewAtom("T", eq.V("x"), eq.C(eq.Value("c"+strconv.Itoa(cluster%tableRows))))},
	}
	if i > 0 {
		q.Post = []eq.Atom{eq.NewAtom("R", eq.C(chainUser(cluster, i-1)), eq.V("y"))}
	}
	return q
}

func chainUser(cluster, i int) eq.Value {
	return eq.Value(fmt.Sprintf("U%d.%d", cluster, i))
}

// Pattern names an arrival-pattern generator.
type Pattern string

const (
	// Steady is join-only traffic at a uniform rate, spread across
	// scenarios (deterministically pseudo-random under the seed).
	Steady Pattern = "steady"
	// Bursty is join-only traffic arriving in bursts: a burst of
	// arrivals back-to-back, then a long pause, same mean rate as
	// Steady.
	Bursty Pattern = "bursty"
	// Churn mixes arrivals with departures (roughly one leave per three
	// joins): half the departures clip a scenario's tail, half remove an
	// interior member, which strands the suffix's postconditions and
	// exercises the incremental pruning cascade.
	Churn Pattern = "churn"
)

// Patterns lists the supported arrival patterns.
func Patterns() []Pattern { return []Pattern{Steady, Bursty, Churn} }

// Arrival is one generated stream event plus its inter-arrival gap,
// expressed in units of the mean gap so callers scale it to any target
// rate (gap * mean interval = wall-clock wait before the event). The
// type is deliberately stream-agnostic — workload generators feed
// stream.Session, benchmarks and tests alike; converting to a
// stream.Event is a one-liner on the caller's side (keeping this
// package below internal/stream in the import graph).
type Arrival struct {
	// Leave discriminates: false is a join carrying Query, true is a
	// departure naming ID.
	Leave bool
	Query eq.Query
	ID    string
	Gap   float64
}

// Arrivals generates n stream events following a pattern, deterministic
// under seed. Scenarios are backward chains (ChainQuery) of about 16
// queries each; tableRows bounds the distinct body values, as in the
// other workload builders. Every generated sequence is admissible: no
// arrival is unsafe, departures name live queries, and any prefix of
// the sequence is a safe set.
func Arrivals(p Pattern, n, tableRows int, seed int64) []Arrival {
	rng := rand.New(rand.NewSource(seed))
	clusters := 1 + (n-1)/16
	next := make([]int, clusters)   // cluster -> next chain index
	live := make([][]int, clusters) // cluster -> live chain indices, ascending
	out := make([]Arrival, 0, n)

	join := func(gap float64) {
		c := rng.Intn(clusters)
		q := ChainQuery(c, next[c], tableRows)
		live[c] = append(live[c], next[c])
		next[c]++
		out = append(out, Arrival{Query: q, Gap: gap})
	}
	leave := func(gap float64) bool {
		// Pick a random non-empty cluster.
		var cands []int
		for c := range live {
			if len(live[c]) > 0 {
				cands = append(cands, c)
			}
		}
		if len(cands) == 0 {
			return false
		}
		c := cands[rng.Intn(len(cands))]
		k := len(live[c]) - 1 // clip the tail...
		if rng.Float64() < 0.5 {
			k = rng.Intn(len(live[c])) // ...or strand a suffix
		}
		i := live[c][k]
		live[c] = append(live[c][:k], live[c][k+1:]...)
		out = append(out, Arrival{Leave: true, ID: fmt.Sprintf("c%d.u%d", c, i), Gap: gap})
		return true
	}

	switch p {
	case Bursty:
		const burst = 8
		for len(out) < n {
			gap := float64(burst) + 0.2 // the pause carries the burst's budget
			for b := 0; b < burst && len(out) < n; b++ {
				join(gap)
				gap = 0.1
			}
		}
	case Churn:
		for len(out) < n {
			if rng.Float64() < 0.25 && leave(1) {
				continue
			}
			join(1)
		}
	default: // Steady
		for len(out) < n {
			join(1)
		}
	}
	return out
}
