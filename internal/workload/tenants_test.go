package workload

import (
	"reflect"
	"testing"
)

func TestTenantsDeterministicAndSkewed(t *testing.T) {
	a, b := Tenants(8, 42), Tenants(8, 42)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("equal (n, seed) generated different mixes")
	}
	if reflect.DeepEqual(a, Tenants(8, 43)) {
		t.Fatal("different seeds generated identical hardness draws")
	}
	names := map[string]bool{}
	for i, tl := range a {
		if names[tl.Name] {
			t.Fatalf("duplicate tenant name %q", tl.Name)
		}
		names[tl.Name] = true
		if tl.Requests < 1 || tl.Queries < 1 || tl.Queries > 8 {
			t.Fatalf("tenant %d out of shape: %+v", i, tl)
		}
		if i > 0 && tl.Requests > a[i-1].Requests {
			t.Fatalf("rates not Zipf-ranked: %d sends %d after %d", i, tl.Requests, a[i-1].Requests)
		}
	}
	// The mix is genuinely skewed: the hottest tenant sends many times
	// the coldest tenant's traffic.
	if a[0].Requests < 4*a[len(a)-1].Requests {
		t.Fatalf("head %d vs tail %d: not skewed", a[0].Requests, a[len(a)-1].Requests)
	}
}
