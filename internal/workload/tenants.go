package workload

import (
	"math/rand"
	"strconv"
)

// TenantLoad is one synthetic tenant in a deterministic multi-tenant
// traffic mix: how much of a round's traffic the tenant sends and how
// hard each of its requests is.
type TenantLoad struct {
	// Name is the tenant identity ("t0".."t{n-1}"), t0 hottest.
	Name string
	// Requests is the tenant's request count per traffic round,
	// Zipf-ranked by tenant index: a handful of hot tenants send most
	// of the traffic, the tail sends one request each — the shape that
	// makes fairness regressions visible.
	Requests int
	// Queries is the query count of each of the tenant's requests (its
	// body hardness), an independent Zipf draw so traffic volume and
	// per-request cost are not correlated.
	Queries int
}

// Tenants returns a deterministic n-tenant traffic mix with
// Zipf-skewed per-tenant rates and body hardness — the fuel for
// fairness tests and benchmarks, built the way SkewedMutations builds
// data skew. Equal (n, seed) return identical mixes.
func Tenants(n int, seed int64) []TenantLoad {
	if n <= 0 {
		n = 4
	}
	rng := rand.New(rand.NewSource(seed))
	// Hardness spans 1..8 queries with a Zipf bias toward cheap bodies.
	zipf := rand.NewZipf(rng, 1.2, 1, 7)
	rates := ZipfRowCounts(n, 64, 1.2)
	out := make([]TenantLoad, n)
	for i := range out {
		out[i] = TenantLoad{
			Name:     "t" + strconv.Itoa(i),
			Requests: rates[i],
			Queries:  1 + int(zipf.Uint64()),
		}
	}
	return out
}
