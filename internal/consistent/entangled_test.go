// Tests in the external test package so they can use the workload
// generators (which themselves import consistent) without a cycle.
package consistent_test

import (
	"math/rand"
	"testing"

	"entangled/internal/consistent"
	"entangled/internal/coord"
	"entangled/internal/db"
	"entangled/internal/eq"
	"entangled/internal/workload"
)

// smallInstance builds a compact flights world: rows flights over
// distinctPairs (dest, day) pairs, plus a friendship graph.
func smallInstance(rows, distinctPairs, users int, friendP float64, rng *rand.Rand) *db.Instance {
	in := db.NewInstance()
	workload.FlightsTable(in, rows, distinctPairs)
	f := in.CreateRelation("Friends", "user", "friend")
	for i := 0; i < users; i++ {
		for j := 0; j < users; j++ {
			if i != j && rng.Float64() < friendP {
				f.Insert(workload.User(i), workload.User(j))
			}
		}
	}
	f.BuildIndex(0)
	return in
}

func TestToEntangledShape(t *testing.T) {
	sch := workload.FlightSchema()
	rng := rand.New(rand.NewSource(61))
	in := smallInstance(6, 3, 3, 1.0, rng)
	q := consistent.Query{
		User:     workload.User(0),
		Coord:    []consistent.Pref{consistent.Is("dest1"), consistent.DontCare},
		Own:      []consistent.Pref{consistent.Is("src0"), consistent.DontCare},
		Partners: []consistent.Partner{consistent.Friend, consistent.With(workload.User(2))},
	}
	e, err := consistent.ToEntangled(sch, q, in)
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Post) != 2 || len(e.Head) != 1 {
		t.Fatalf("shape: %v", e)
	}
	// Body: self atom + 2 partner atoms + 1 friendship atom.
	if len(e.Body) != 4 {
		t.Fatalf("body size = %d: %v", len(e.Body), e.Body)
	}
	if err := eq.Validate([]eq.Query{e}, in.Schema()); err != nil {
		t.Fatal(err)
	}
	// Coordination attributes are shared: the dest column of the self
	// atom and both partner atoms carry the same term.
	self := e.Body[0]
	if self.Args[1] != eq.C("dest1") {
		t.Fatalf("self dest = %v", self.Args[1])
	}
	var partnerAtoms []eq.Atom
	for _, a := range e.Body[1:] {
		if a.Rel == sch.Table {
			partnerAtoms = append(partnerAtoms, a)
		}
	}
	if len(partnerAtoms) != 2 {
		t.Fatalf("want 2 partner atoms, got %v", partnerAtoms)
	}
	for _, pa := range partnerAtoms {
		if pa.Args[1] != eq.C("dest1") {
			t.Fatalf("partner dest = %v, want the shared constant", pa.Args[1])
		}
		if pa.Args[2] != self.Args[2] {
			t.Fatalf("day must be the shared variable: %v vs %v", pa.Args[2], self.Args[2])
		}
		// Non-coordination attributes of partners are fresh variables.
		if !pa.Args[3].IsVar() || !pa.Args[4].IsVar() {
			t.Fatalf("partner own attrs must be variables: %v", pa)
		}
		if pa.Args[3] == self.Args[3] {
			t.Fatal("partner src must be distinct from self src")
		}
	}
}

// Proposition 1: for A-consistent query sets, a coordinating set exists
// iff one exists where all tuples agree on A. We check existence
// equivalence between the Consistent Coordination Algorithm (which only
// looks for same-value sets) and the exact brute-force solver on the
// translated entangled queries.
func TestQuickProposition1(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	sch := workload.FlightSchema()
	for trial := 0; trial < 60; trial++ {
		users := 2 + rng.Intn(4)
		in := smallInstance(4+rng.Intn(4), 2+rng.Intn(2), users, 0.5, rng)
		qs := workload.RandomFlightQueries(users, 2, 0.4, rng)
		res, err := consistent.Coordinate(sch, qs, in, consistent.Options{})
		if err != nil {
			t.Fatal(err)
		}
		eqs, err := consistent.ToEntangledSet(sch, qs, in)
		if err != nil {
			t.Fatal(err)
		}
		exists, err := coord.BruteForceExists(eqs, in)
		if err != nil {
			t.Fatal(err)
		}
		if (res != nil) != exists {
			t.Fatalf("trial %d: consistent=%v brute=%v\nqueries: %+v", trial, res != nil, exists, qs)
		}
	}
}

// Every coordinating set the algorithm returns is sound: each member's
// selected tuple satisfies its constraints and the shared value, each
// named partner is a member, and each friend slot is filled by a
// distinct member friend.
func TestQuickResultSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	sch := workload.FlightSchema()
	for trial := 0; trial < 80; trial++ {
		users := 2 + rng.Intn(6)
		in := smallInstance(6+rng.Intn(6), 3, users, 0.4, rng)
		qs := workload.RandomFlightQueries(users, 3, 0.3, rng)
		res, err := consistent.Coordinate(sch, qs, in, consistent.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res == nil {
			continue
		}
		member := map[eq.Value]bool{}
		for _, i := range res.Members {
			member[qs[i].User] = true
		}
		fl, _ := in.Relation("Flights")
		for _, i := range res.Members {
			key := res.Keys[i]
			// Find the selected tuple.
			var tup db.Tuple
			for r := 0; r < fl.Len(); r++ {
				if fl.Tuple(r)[0] == key {
					tup = fl.Tuple(r)
					break
				}
			}
			if tup == nil {
				t.Fatalf("trial %d: key %v not in Flights", trial, key)
			}
			// Agrees with the chosen coordination value.
			for j, c := range sch.CoordCols {
				if tup[c] != res.Value[j] {
					t.Fatalf("trial %d: member %d tuple %v disagrees with value %v", trial, i, tup, res.Value)
				}
			}
			// Satisfies the member's own constants.
			for j, p := range qs[i].Coord {
				if !p.Any && tup[sch.CoordCols[j]] != p.Val {
					t.Fatalf("trial %d: coord constraint violated", trial)
				}
			}
			for j, p := range qs[i].Own {
				if !p.Any && tup[sch.OwnCols[j]] != p.Val {
					t.Fatalf("trial %d: own constraint violated", trial)
				}
			}
			// Partner requirements.
			friendSlots := 0
			for _, p := range qs[i].Partners {
				if p.AnyFriend {
					friendSlots++
					continue
				}
				if !member[p.Name] {
					t.Fatalf("trial %d: named partner %v missing", trial, p.Name)
				}
			}
			if friendSlots > 0 {
				friends := map[eq.Value]bool{}
				fr, _ := in.Relation("Friends")
				for r := 0; r < fr.Len(); r++ {
					tp := fr.Tuple(r)
					if tp[0] == qs[i].User && member[tp[1]] && tp[1] != qs[i].User {
						friends[tp[1]] = true
					}
				}
				if len(friends) < friendSlots {
					t.Fatalf("trial %d: %d friend slots, %d member friends", trial, friendSlots, len(friends))
				}
			}
		}
	}
}

// The queue-based and sweep-based cleaning phases always agree.
func TestQuickCleaningAblation(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	sch := workload.FlightSchema()
	for trial := 0; trial < 60; trial++ {
		users := 2 + rng.Intn(6)
		in := smallInstance(5+rng.Intn(5), 3, users, 0.4, rng)
		qs := workload.RandomFlightQueries(users, 3, 0.3, rng)
		a, err := consistent.Coordinate(sch, qs, in, consistent.Options{})
		if err != nil {
			t.Fatal(err)
		}
		b, err := consistent.Coordinate(sch, qs, in, consistent.Options{SweepCleaning: true})
		if err != nil {
			t.Fatal(err)
		}
		if (a == nil) != (b == nil) {
			t.Fatalf("trial %d: cleaning strategies disagree on existence", trial)
		}
		if a == nil {
			continue
		}
		if len(a.Members) != len(b.Members) {
			t.Fatalf("trial %d: member counts differ: %v vs %v", trial, a.Members, b.Members)
		}
		for i := range a.Members {
			if a.Members[i] != b.Members[i] {
				t.Fatalf("trial %d: members differ: %v vs %v", trial, a.Members, b.Members)
			}
		}
	}
}

// The worst-case workload of Figures 7/8 always coordinates everybody.
func TestWorstCaseWorkloadAllCoordinate(t *testing.T) {
	sch := workload.FlightSchema()
	for _, users := range []int{2, 10, 25} {
		in := db.NewInstance()
		workload.FlightsTable(in, 50, 50)
		workload.CompleteFriends(in, users)
		qs := workload.FlightQueries(users)
		res, err := consistent.Coordinate(sch, qs, in, consistent.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res == nil || len(res.Members) != users {
			t.Fatalf("users=%d: %v", users, res)
		}
		// Everyone flies to the same (dest, day).
		for _, i := range res.Members {
			key := res.Keys[i]
			if key == "" {
				t.Fatalf("missing key for member %d", i)
			}
		}
		// DB queries: users option lists + users friend lists + users
		// groundings — linear, as §6.2 claims.
		if res.DBQueries != int64(3*users) {
			t.Fatalf("users=%d: DBQueries=%d, want %d", users, res.DBQueries, 3*users)
		}
	}
}

// Selector ablation: a custom selector that prefers a specific user.
func TestCustomSelector(t *testing.T) {
	in := db.NewInstance()
	fl := in.CreateRelation("Flights", "fid", "dest", "day", "src", "airline")
	fl.Insert("f1", "A", "d1", "s", "a")
	fl.Insert("f2", "B", "d2", "s", "a")
	fr := in.CreateRelation("Friends", "user", "friend")
	fr.Insert("U0", "U1")
	fr.Insert("U1", "U0")
	fr.Insert("U2", "U3")
	fr.Insert("U3", "U2")
	sch := workload.FlightSchema()
	qs := []consistent.Query{
		{User: "U0", Coord: []consistent.Pref{consistent.Is("A"), consistent.DontCare}, Own: []consistent.Pref{consistent.DontCare, consistent.DontCare}, Partners: []consistent.Partner{consistent.Friend}},
		{User: "U1", Coord: []consistent.Pref{consistent.Is("A"), consistent.DontCare}, Own: []consistent.Pref{consistent.DontCare, consistent.DontCare}, Partners: []consistent.Partner{consistent.Friend}},
		{User: "U2", Coord: []consistent.Pref{consistent.Is("B"), consistent.DontCare}, Own: []consistent.Pref{consistent.DontCare, consistent.DontCare}, Partners: []consistent.Partner{consistent.Friend}},
		{User: "U3", Coord: []consistent.Pref{consistent.Is("B"), consistent.DontCare}, Own: []consistent.Pref{consistent.DontCare, consistent.DontCare}, Partners: []consistent.Partner{consistent.Friend}},
	}
	// Default: first maximal candidate (A-group, discovered first).
	res, err := consistent.Coordinate(sch, qs, in, consistent.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Value[0] != "A" {
		t.Fatalf("default selector: %v", res.Value)
	}
	// Prefer candidates containing query 2.
	preferU2 := func(cands []consistent.Candidate) int {
		for i, c := range cands {
			for _, m := range c.Members {
				if m == 2 {
					return i
				}
			}
		}
		return 0
	}
	res2, err := consistent.Coordinate(sch, qs, in, consistent.Options{Select: preferU2})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Value[0] != "B" {
		t.Fatalf("custom selector: %v", res2.Value)
	}
}
