// Package consistent implements the Consistent Coordination Algorithm of
// §5 of the paper, which finds coordinating sets for *unsafe* query sets
// as long as every user coordinates on the same set of attributes A
// (A-consistent queries, Definition 9).
//
// The model mirrors the paper's application-specific setting: a single
// data relation S whose first-class citizen is a key column, a binary
// friendship relation F(user, friend), and one query per user of the
// general form of §5. A query constrains the coordination attributes
// (shared by the user and all partners), its own non-coordination
// attributes, and names its partners either by constant or as "any
// friend of mine in F".
package consistent
