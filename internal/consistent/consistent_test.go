package consistent

import (
	"reflect"
	"testing"

	"entangled/internal/db"
	"entangled/internal/eq"
)

// moviesSchema is the §5 movies example schema: M(movie_id, cinema_name,
// movie_name), coordinating on the cinema.
func moviesSchema() Schema {
	return Schema{
		Table:     "M",
		KeyCol:    0,
		CoordCols: []int{1},
		OwnCols:   []int{2},
		Friends:   "C",
	}
}

// moviesInstance builds the §5 movies database: Contagion plays at
// Regal, Project X at AMC, and Hugo at Regal, AMC and Cinemark; the C
// relation holds the band's friendships.
func moviesInstance() *db.Instance {
	in := db.NewInstance()
	m := in.CreateRelation("M", "movie_id", "cinema_name", "movie_name")
	m.Insert("m1", "Regal", "Contagion")
	m.Insert("m2", "AMC", "ProjectX")
	m.Insert("m3", "Regal", "Hugo")
	m.Insert("m4", "AMC", "Hugo")
	m.Insert("m5", "Cinemark", "Hugo")
	m.BuildIndex(1)
	c := in.CreateRelation("C", "user", "friend")
	for _, p := range [][2]eq.Value{
		{"Chris", "Jonny"}, {"Chris", "Guy"},
		{"Guy", "Chris"}, {"Guy", "Jonny"},
		{"Jonny", "Chris"}, {"Jonny", "Will"},
		{"Will", "Chris"}, {"Will", "Guy"},
	} {
		c.Insert(p[0], p[1])
	}
	c.BuildIndex(0)
	return in
}

// moviesQueries is the §5 query set: Chris wants Contagion at Regal with
// Will; Guy wants Project X at AMC with a friend; Jonny and Will want
// Hugo anywhere with a friend.
func moviesQueries() []Query {
	return []Query{
		{User: "Chris", Coord: []Pref{Is("Regal")}, Own: []Pref{Is("Contagion")}, Partners: []Partner{With("Will")}},
		{User: "Guy", Coord: []Pref{Is("AMC")}, Own: []Pref{Is("ProjectX")}, Partners: []Partner{Friend}},
		{User: "Jonny", Coord: []Pref{DontCare}, Own: []Pref{Is("Hugo")}, Partners: []Partner{Friend}},
		{User: "Will", Coord: []Pref{DontCare}, Own: []Pref{Is("Hugo")}, Partners: []Partner{Friend}},
	}
}

func TestMoviesExample(t *testing.T) {
	in := moviesInstance()
	res, err := Coordinate(moviesSchema(), moviesQueries(), in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res == nil {
		t.Fatal("the paper's example has a coordinating set")
	}
	// The winner is Regal with everyone except Guy (§5's walk-through).
	if res.Value[0] != "Regal" {
		t.Fatalf("value = %v, want Regal", res.Value)
	}
	if !reflect.DeepEqual(res.Members, []int{0, 2, 3}) {
		t.Fatalf("members = %v, want [0 2 3] (Chris, Jonny, Will)", res.Members)
	}
	// Chris watches Contagion at Regal; Jonny and Will watch Hugo there.
	if res.Keys[0] != "m1" {
		t.Fatalf("Chris's movie = %v, want m1", res.Keys[0])
	}
	if res.Keys[2] != "m3" || res.Keys[3] != "m3" {
		t.Fatalf("Jonny/Will should get Hugo at Regal (m3): %v", res.Keys)
	}
}

func TestMoviesCandidates(t *testing.T) {
	in := moviesInstance()
	res, err := Coordinate(moviesSchema(), moviesQueries(), in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Candidates: Regal -> {Chris, Jonny, Will}; AMC -> {Guy, Jonny,
	// Will}; Cinemark cleans down to nothing (the §5 walk-through).
	byValue := map[eq.Value][]int{}
	for _, c := range res.Candidates {
		byValue[c.Value[0]] = c.Members
	}
	if !reflect.DeepEqual(byValue["Regal"], []int{0, 2, 3}) {
		t.Fatalf("Regal candidate = %v", byValue["Regal"])
	}
	if !reflect.DeepEqual(byValue["AMC"], []int{1, 2, 3}) {
		t.Fatalf("AMC candidate = %v", byValue["AMC"])
	}
	if _, ok := byValue["Cinemark"]; ok {
		t.Fatal("Cinemark must clean down to the empty set")
	}
}

func TestMoviesCleaningCascade(t *testing.T) {
	// GCinemark contains only Jonny and Will; Will has no friend there,
	// then Jonny follows. Verify via the sweep-cleaning ablation too.
	in := moviesInstance()
	for _, sweep := range []bool{false, true} {
		res, err := Coordinate(moviesSchema(), moviesQueries(), in, Options{SweepCleaning: sweep})
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range res.Candidates {
			if c.Value[0] == "Cinemark" {
				t.Fatalf("sweep=%v: Cinemark should have been cleaned away", sweep)
			}
		}
	}
}

func TestNamedPartnerMustBePresent(t *testing.T) {
	// Chris asks for Will by name; if Will submits nothing, Chris cannot
	// coordinate even though Jonny could keep him company.
	in := moviesInstance()
	qs := []Query{
		{User: "Chris", Coord: []Pref{Is("Regal")}, Own: []Pref{Is("Contagion")}, Partners: []Partner{With("Will")}},
		{User: "Jonny", Coord: []Pref{DontCare}, Own: []Pref{Is("Hugo")}, Partners: []Partner{With("Chris")}},
	}
	res, err := Coordinate(moviesSchema(), qs, in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res != nil {
		t.Fatalf("nobody can coordinate: Chris needs Will, Jonny needs Chris; got %v", res)
	}
}

func TestFriendSlotNeedsFriendshipRow(t *testing.T) {
	// Two users who are not friends cannot satisfy friend slots even if
	// both are present.
	in := db.NewInstance()
	m := in.CreateRelation("M", "movie_id", "cinema_name", "movie_name")
	m.Insert("m1", "Regal", "Hugo")
	in.CreateRelation("C", "user", "friend") // empty friendships
	qs := []Query{
		{User: "A", Coord: []Pref{DontCare}, Own: []Pref{DontCare}, Partners: []Partner{Friend}},
		{User: "B", Coord: []Pref{DontCare}, Own: []Pref{DontCare}, Partners: []Partner{Friend}},
	}
	res, err := Coordinate(moviesSchema(), qs, in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res != nil {
		t.Fatalf("no friendships: want nil, got %v", res)
	}
}

func TestNoPartnersCoordinatesAlone(t *testing.T) {
	in := moviesInstance()
	qs := []Query{
		{User: "Chris", Coord: []Pref{Is("Regal")}, Own: []Pref{Is("Contagion")}},
	}
	res, err := Coordinate(moviesSchema(), qs, in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res == nil || len(res.Members) != 1 {
		t.Fatalf("partnerless query coordinates alone: %v", res)
	}
	if res.Keys[0] != "m1" {
		t.Fatalf("key = %v", res.Keys)
	}
}

func TestUnsatisfiableOwnConstraint(t *testing.T) {
	in := moviesInstance()
	qs := []Query{
		{User: "Chris", Coord: []Pref{DontCare}, Own: []Pref{Is("NoSuchMovie")}},
	}
	res, err := Coordinate(moviesSchema(), qs, in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res != nil {
		t.Fatalf("empty option list: want nil, got %v", res)
	}
}

func TestTwoFriendSlots(t *testing.T) {
	// The "coordinate with k friends" generalization: Jonny wants two
	// distinct friends present.
	in := moviesInstance()
	qs := []Query{
		{User: "Jonny", Coord: []Pref{DontCare}, Own: []Pref{Is("Hugo")}, Partners: []Partner{Friend, Friend}},
		{User: "Chris", Coord: []Pref{DontCare}, Own: []Pref{Is("Hugo")}, Partners: []Partner{Friend}},
		{User: "Will", Coord: []Pref{DontCare}, Own: []Pref{Is("Hugo")}, Partners: []Partner{Friend}},
	}
	res, err := Coordinate(moviesSchema(), qs, in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Jonny's friends are Chris and Will: both watch Hugo, so all three
	// coordinate (at Regal or AMC; Regal appears first).
	if res == nil || len(res.Members) != 3 {
		t.Fatalf("want all three, got %v", res)
	}
	// Dropping Will leaves Jonny with only one friend: Jonny goes, and
	// Chris follows (his only remaining friend is Jonny, who left).
	res2, err := Coordinate(moviesSchema(), qs[:2], in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res2 != nil {
		t.Fatalf("two-friend requirement unmet: want nil, got %v", res2)
	}
}

func TestSchemaValidate(t *testing.T) {
	in := moviesInstance()
	bad := moviesSchema()
	bad.Table = "Nope"
	if _, err := Coordinate(bad, moviesQueries(), in, Options{}); err == nil {
		t.Fatal("unknown table must fail")
	}
	bad2 := moviesSchema()
	bad2.CoordCols = []int{9}
	if _, err := Coordinate(bad2, moviesQueries(), in, Options{}); err == nil {
		t.Fatal("column out of range must fail")
	}
	bad3 := moviesSchema()
	bad3.Friends = "M" // arity 3, not binary
	if _, err := Coordinate(bad3, moviesQueries(), in, Options{}); err == nil {
		t.Fatal("non-binary friends relation must fail")
	}
}

func TestPrefArityChecked(t *testing.T) {
	in := moviesInstance()
	qs := []Query{{User: "Chris", Coord: []Pref{DontCare, DontCare}, Own: []Pref{DontCare}}}
	if _, err := Coordinate(moviesSchema(), qs, in, Options{}); err == nil {
		t.Fatal("wrong Coord arity must fail")
	}
	qs2 := []Query{{User: "Chris", Coord: []Pref{DontCare}, Own: nil}}
	if _, err := Coordinate(moviesSchema(), qs2, in, Options{}); err == nil {
		t.Fatal("wrong Own arity must fail")
	}
}

func TestEmptyQuerySet(t *testing.T) {
	in := moviesInstance()
	res, err := Coordinate(moviesSchema(), nil, in, Options{})
	if err != nil || res != nil {
		t.Fatalf("empty input: res=%v err=%v", res, err)
	}
}

func TestDBQueryCountLinear(t *testing.T) {
	// §6.2: the number of database queries is linear in the number of
	// entangled queries: one V(q) query per user, one friends query per
	// user with a friend slot, one grounding query per winner member.
	in := moviesInstance()
	qs := moviesQueries()
	res, err := Coordinate(moviesSchema(), qs, in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// 4 option lists + 3 friend lists (Chris has no friend slot) + 3
	// groundings.
	if res.DBQueries != 10 {
		t.Fatalf("DBQueries = %d, want 10", res.DBQueries)
	}
}

func TestPrefAndPartnerString(t *testing.T) {
	if DontCare.String() != "*" || Is("Regal").String() != "Regal" {
		t.Fatal("Pref rendering broken")
	}
}

func TestTraceMoviesWalkthrough(t *testing.T) {
	// The trace must mirror the §5 walk-through: option list sizes
	// (1, 1, 3, 3), and the Cinemark value shrinking {Jonny, Will} down
	// to nothing during cleaning.
	in := moviesInstance()
	tr := &Trace{}
	if _, err := Coordinate(moviesSchema(), moviesQueries(), in, Options{Trace: tr}); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 1, 3, 3}
	for i, w := range want {
		if tr.OptionCounts[i] != w {
			t.Fatalf("option counts = %v, want %v", tr.OptionCounts, want)
		}
	}
	if len(tr.Values) != 3 {
		t.Fatalf("three candidate values examined: %v", tr.Values)
	}
	var cinemark *ValueEvent
	for i := range tr.Values {
		if tr.Values[i].Value[0] == "Cinemark" {
			cinemark = &tr.Values[i]
		}
	}
	if cinemark == nil {
		t.Fatal("Cinemark must be examined")
	}
	if len(cinemark.Initial) != 2 || len(cinemark.Survivors) != 0 {
		t.Fatalf("Cinemark cleaning: %+v", cinemark)
	}
}
