package consistent

import (
	"testing"

	"entangled/internal/db"
	"entangled/internal/eq"
)

// multiRelInstance: a world with separate "Friends" and "Colleagues"
// relations over one cinema table.
func multiRelInstance() *db.Instance {
	in := db.NewInstance()
	m := in.CreateRelation("M", "movie_id", "cinema_name", "movie_name")
	m.Insert("m1", "Regal", "Hugo")
	m.Insert("m2", "AMC", "Hugo")
	m.BuildIndex(1)
	f := in.CreateRelation("C", "user", "friend")
	f.Insert("A", "B")
	f.Insert("B", "A")
	w := in.CreateRelation("Colleagues", "user", "colleague")
	w.Insert("A", "D")
	w.Insert("D", "A")
	return in
}

func anyMovie() Query {
	return Query{Coord: []Pref{DontCare}, Own: []Pref{DontCare}}
}

func TestFriendFromOtherRelation(t *testing.T) {
	in := multiRelInstance()
	// A wants one friend AND one colleague; B is a friend, D a
	// colleague.
	a := anyMovie()
	a.User = "A"
	a.Partners = []Partner{Friend, FriendFrom("Colleagues")}
	b := anyMovie()
	b.User = "B"
	b.Partners = []Partner{Friend}
	d := anyMovie()
	d.User = "D"
	d.Partners = []Partner{FriendFrom("Colleagues")}
	res, err := Coordinate(moviesSchema(), []Query{a, b, d}, in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res == nil || len(res.Members) != 3 {
		t.Fatalf("all three coordinate: %v", res)
	}
	// Drop D: A's colleague slot is unfillable, so A leaves, then B
	// (whose only friend is A) follows.
	res2, err := Coordinate(moviesSchema(), []Query{a, b}, in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res2 != nil {
		t.Fatalf("colleague slot unfillable: want nil, got %v", res2)
	}
}

func TestDistinctRepresentativesAcrossRelations(t *testing.T) {
	// A's two slots draw from relations whose only candidates overlap in
	// one user: slot1 (Friends) can be filled by {B}, slot2 (Colleagues)
	// by {B} too — one person cannot fill two slots.
	in := db.NewInstance()
	m := in.CreateRelation("M", "movie_id", "cinema_name", "movie_name")
	m.Insert("m1", "Regal", "Hugo")
	f := in.CreateRelation("C", "user", "friend")
	f.Insert("A", "B")
	f.Insert("B", "A")
	w := in.CreateRelation("Colleagues", "user", "colleague")
	w.Insert("A", "B")

	a := anyMovie()
	a.User = "A"
	a.Partners = []Partner{Friend, FriendFrom("Colleagues")}
	b := anyMovie()
	b.User = "B"
	b.Partners = []Partner{Friend}
	res, err := Coordinate(moviesSchema(), []Query{a, b}, in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res != nil {
		t.Fatalf("B cannot fill both of A's slots: want nil, got %v", res)
	}

	// Adding a colleague E unblocks the matching.
	w.Insert("A", "E")
	e := anyMovie()
	e.User = "E"
	res2, err := Coordinate(moviesSchema(), []Query{a, b, e}, in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res2 == nil || len(res2.Members) != 3 {
		t.Fatalf("matching should succeed with E present: %v", res2)
	}
}

func TestMatchSlotsAugmentingPath(t *testing.T) {
	// Three slots over {x}, {x, y}, {y, z}: needs the augmenting-path
	// reshuffle (greedy in order x, x->y, y->z works, but order {x,y}
	// first would grab x and force a swap).
	cases := []struct {
		slots [][]eq.Value
		want  bool
	}{
		{[][]eq.Value{{"x"}, {"x", "y"}, {"y", "z"}}, true},
		{[][]eq.Value{{"x"}, {"x"}}, false},
		{[][]eq.Value{{"x", "y"}, {"x", "y"}, {"x", "y"}}, false},
		{[][]eq.Value{{"x", "y"}, {"y", "z"}, {"z", "x"}}, true},
		{nil, true},
		{[][]eq.Value{{"only"}}, true},
	}
	for i, c := range cases {
		if got := matchSlots(c.slots); got != c.want {
			t.Errorf("case %d: matchSlots(%v) = %v, want %v", i, c.slots, got, c.want)
		}
	}
}

func TestMultiRelSweepAgrees(t *testing.T) {
	in := multiRelInstance()
	a := anyMovie()
	a.User = "A"
	a.Partners = []Partner{Friend, FriendFrom("Colleagues")}
	b := anyMovie()
	b.User = "B"
	b.Partners = []Partner{Friend}
	d := anyMovie()
	d.User = "D"
	d.Partners = []Partner{FriendFrom("Colleagues")}
	qs := []Query{a, b, d}
	r1, err := Coordinate(moviesSchema(), qs, in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Coordinate(moviesSchema(), qs, in, Options{SweepCleaning: true})
	if err != nil {
		t.Fatal(err)
	}
	if (r1 == nil) != (r2 == nil) || len(r1.Members) != len(r2.Members) {
		t.Fatalf("cleaning strategies disagree: %v vs %v", r1, r2)
	}
}
