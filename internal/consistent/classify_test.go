package consistent_test

import (
	"math/rand"
	"testing"

	"entangled/internal/consistent"
	"entangled/internal/eq"
	"entangled/internal/workload"
)

// Every query the ToEntangled translation produces must be A-consistent
// for the schema it was built from — the translation and the checker
// implement the same Definitions 7-9.
func TestQuickTranslationIsAConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(111))
	sch := workload.FlightSchema()
	for trial := 0; trial < 60; trial++ {
		users := 2 + rng.Intn(5)
		in := smallInstance(5, 3, users, 0.5, rng)
		qs := workload.RandomFlightQueries(users, 3, 0.4, rng)
		for i, q := range qs {
			if len(q.Partners) == 0 {
				continue
			}
			e, err := consistent.ToEntangled(sch, q, in)
			if err != nil {
				t.Fatal(err)
			}
			ok, err := consistent.IsAConsistent(sch, e, 5)
			if err != nil {
				t.Fatalf("trial %d query %d: %v\n%s", trial, i, err, e)
			}
			if !ok {
				t.Fatalf("trial %d query %d: translation not A-consistent:\n%s", trial, i, e)
			}
		}
	}
}

func TestClassifyDetectsViolations(t *testing.T) {
	sch := workload.FlightSchema()
	// Flights(fid, dest, day, src, airline); coordinating on dest, day.
	base := eq.MustParseSet(`
query ok {
  post: R(y, U1)
  head: R(x, U0)
  body: Flights(x, d, t, s1, a1), Flights(y, d, t, s2, a2)
}`)[0]
	ok, err := consistent.IsAConsistent(sch, base, 5)
	if err != nil || !ok {
		t.Fatalf("base query must be A-consistent: %v %v", ok, err)
	}

	// Constraining the partner's airline breaks A-non-coordination.
	bad1 := eq.MustParseSet(`
query bad1 {
  post: R(y, U1)
  head: R(x, U0)
  body: Flights(x, d, t, s1, a1), Flights(y, d, t, s2, KLM)
}`)[0]
	ok, err = consistent.IsAConsistent(sch, bad1, 5)
	if err != nil || ok {
		t.Fatalf("constant partner airline must fail: %v %v", ok, err)
	}

	// Different destination terms break A-coordination.
	bad2 := eq.MustParseSet(`
query bad2 {
  post: R(y, U1)
  head: R(x, U0)
  body: Flights(x, d, t, s1, a1), Flights(y, d2, t, s2, a2)
}`)[0]
	ok, err = consistent.IsAConsistent(sch, bad2, 5)
	if err != nil || ok {
		t.Fatalf("split destination must fail: %v %v", ok, err)
	}

	// Sharing the source variable with the partner breaks
	// non-coordination (the Appendix B trick: coordinating on an extra
	// attribute).
	bad3 := eq.MustParseSet(`
query bad3 {
  post: R(y, U1)
  head: R(x, U0)
  body: Flights(x, d, t, s, a1), Flights(y, d, t, s, a2)
}`)[0]
	ok, err = consistent.IsAConsistent(sch, bad3, 5)
	if err != nil || ok {
		t.Fatalf("shared source variable must fail: %v %v", ok, err)
	}
}

func TestParseGeneralFormErrors(t *testing.T) {
	sch := workload.FlightSchema()
	bad := []string{
		`query a { head: R(x) }`,                                                 // head arity
		`query b { head: R(X, u) }`,                                              // constant key / variable user
		`query c { head: R(x, U0) body: Flights(K, d, t, s, a) }`,                // constant S key
		`query d { head: R(x, U0) }`,                                             // no self atom
		`query e { post: R(y, U1) head: R(x, U0) body: Flights(x, d, t, s, a) }`, // post without S-atom
	}
	for _, src := range bad {
		q := eq.MustParseSet(src)[0]
		if _, err := consistent.ParseGeneralForm(sch, q); err == nil {
			t.Errorf("ParseGeneralForm should reject %s", src)
		}
	}
}
