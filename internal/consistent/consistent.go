package consistent

import (
	"fmt"
	"sort"

	"entangled/internal/db"
	"entangled/internal/eq"
)

// Pref is a per-attribute preference: a required constant or "don't
// care".
type Pref struct {
	Any bool
	Val eq.Value
}

// Is builds a constant preference.
func Is(v eq.Value) Pref { return Pref{Val: v} }

// DontCare is the wildcard preference.
var DontCare = Pref{Any: true}

// String renders the preference.
func (p Pref) String() string {
	if p.Any {
		return "*"
	}
	return string(p.Val)
}

// Partner is one coordination-partner slot of a query: either a named
// user (constant) or any friend of the submitting user per the
// friendship relation.
type Partner struct {
	AnyFriend bool
	Name      eq.Value // used when !AnyFriend
	// Rel optionally names the binary relation the friend slot draws
	// from; empty means Schema.Friends. The paper's Discussion notes
	// that partners may come from more than one relation ("colleagues",
	// "family", ...) with extra conditions in the cleaning step.
	Rel string
}

// Friend is the wildcard partner slot over the default friendship
// relation.
var Friend = Partner{AnyFriend: true}

// FriendFrom builds a wildcard partner slot over a specific binary
// relation.
func FriendFrom(rel string) Partner { return Partner{AnyFriend: true, Rel: rel} }

// With builds a constant partner slot.
func With(name eq.Value) Partner { return Partner{Name: name} }

// Query is one user's A-consistent coordination request.
type Query struct {
	// User is the submitting user's name (also the head's second
	// component in the entangled-query form).
	User eq.Value
	// Coord holds one preference per coordination attribute, in the
	// order of Schema.CoordCols. By A-consistency these constraints are
	// shared between the user and every partner.
	Coord []Pref
	// Own holds one preference per non-coordination attribute, in the
	// order of Schema.OwnCols; they constrain only the user's own tuple
	// (A-non-coordination forbids constraining partners here).
	Own []Pref
	// Partners lists the coordination-partner slots. Each constant
	// partner must be in the coordinating set; the AnyFriend slots
	// require at least that many distinct friends in the set (the k=1
	// case is the paper's f1; larger k is the "coordinate with k
	// friends" generalization of §5's Discussion).
	Partners []Partner
}

// Schema describes the application: which relation users coordinate
// over, which of its columns form the coordination attribute set A, and
// where friendships live.
type Schema struct {
	Table     string // data relation S
	KeyCol    int    // key column of S
	CoordCols []int  // the coordination attributes A (columns of S)
	OwnCols   []int  // columns constrainable per-user (disjoint from CoordCols and KeyCol)
	Friends   string // binary friendship relation F(user, friend)
}

// Validate performs structural checks of the schema against an instance.
func (sch Schema) Validate(inst *db.Instance) error {
	s, ok := inst.Relation(sch.Table)
	if !ok {
		return fmt.Errorf("consistent: relation %s not in instance", sch.Table)
	}
	check := func(col int) error {
		if col < 0 || col >= s.Arity() {
			return fmt.Errorf("consistent: column %d out of range for %s", col, sch.Table)
		}
		return nil
	}
	if err := check(sch.KeyCol); err != nil {
		return err
	}
	for _, c := range append(append([]int{}, sch.CoordCols...), sch.OwnCols...) {
		if err := check(c); err != nil {
			return err
		}
	}
	f, ok := inst.Relation(sch.Friends)
	if !ok {
		return fmt.Errorf("consistent: friendship relation %s not in instance", sch.Friends)
	}
	if f.Arity() != 2 {
		return fmt.Errorf("consistent: friendship relation %s must be binary", sch.Friends)
	}
	return nil
}

// Candidate is one value of the coordination attributes together with
// the queries that survive the cleaning phase for it.
type Candidate struct {
	Value   []eq.Value // one value per coordination attribute
	Members []int      // surviving query indices, sorted
}

// Selector picks the winning candidate; default is max member count.
type Selector func(cands []Candidate) int

// MaxMembers selects the candidate with the most members (first wins
// ties).
func MaxMembers(cands []Candidate) int {
	best := 0
	for i, c := range cands {
		if len(c.Members) > len(cands[best].Members) {
			best = i
		}
	}
	return best
}

// Result is the algorithm's output.
type Result struct {
	// Value is the agreed value of the coordination attributes.
	Value []eq.Value
	// Members are the indices of the coordinating queries, sorted.
	Members []int
	// Keys maps each member to the key of its selected tuple of S (the
	// paper's final output: user -> flight number).
	Keys map[int]eq.Value
	// Candidates holds every non-empty candidate discovered, for
	// callers that want a different selection criterion post hoc.
	Candidates []Candidate
	// DBQueries is the number of database queries issued.
	DBQueries int64
}

// Options configures Coordinate.
type Options struct {
	Select Selector // nil means MaxMembers
	// SweepCleaning switches the cleaning phase from the queue-driven
	// implementation to repeated full sweeps (the ablation benchmark
	// compares the two; results are identical).
	SweepCleaning bool
	// Trace, when non-nil, records the algorithm's steps (option-list
	// sizes and per-value cleaning outcomes).
	Trace *Trace
}

// Trace records a Coordinate run for debugging and explanation.
type Trace struct {
	// OptionCounts[i] is |V(q_i)|, the number of candidate values for
	// query i (0 means the query was pruned before the value loop).
	OptionCounts []int
	// Values holds one event per candidate value examined.
	Values []ValueEvent
}

// ValueEvent is the outcome of the restrict+clean step for one value.
type ValueEvent struct {
	Value     []eq.Value
	Initial   []int // queries whose option lists contain the value
	Survivors []int // queries left after the cleaning phase
}

// Coordinate runs the Consistent Coordination Algorithm. It returns the
// selected coordinating set or nil when none exists.
func Coordinate(sch Schema, qs []Query, inst *db.Instance, opts Options) (*Result, error) {
	if err := sch.Validate(inst); err != nil {
		return nil, err
	}
	if len(qs) == 0 {
		return nil, nil
	}
	start := inst.QueriesIssued()

	// Step 1: option lists V(q) — one database query per user.
	options := make([][]db.Tuple, len(qs))
	optKey := make([]map[string]bool, len(qs))
	for i, q := range qs {
		where, err := whereOf(sch, q)
		if err != nil {
			return nil, err
		}
		vals, err := inst.Project(sch.Table, sch.CoordCols, where)
		if err != nil {
			return nil, err
		}
		options[i] = vals
		optKey[i] = map[string]bool{}
		for _, v := range vals {
			optKey[i][tupleKey(v)] = true
		}
	}
	if opts.Trace != nil {
		opts.Trace.OptionCounts = make([]int, len(qs))
		for i := range qs {
			opts.Trace.OptionCounts[i] = len(options[i])
		}
	}

	// Step 2: pruned coordination graph. Nodes are queries with a
	// non-empty option list; edges follow constant partners and
	// friendships (one friend-list query per user).
	userIdx := map[eq.Value][]int{}
	for i, q := range qs {
		userIdx[q.User] = append(userIdx[q.User], i)
	}
	alive := make([]bool, len(qs))
	for i := range qs {
		alive[i] = len(options[i]) > 0
	}
	// friendsOf[i] maps each relation used by query i's friend slots to
	// the indices of i's friends' queries under that relation — one
	// database query per (user, relation) pair.
	friendsOf := make([]map[string][]int, len(qs))
	for i, q := range qs {
		if !alive[i] {
			continue
		}
		for _, rel := range friendRels(sch, q) {
			if friendsOf[i] == nil {
				friendsOf[i] = map[string][]int{}
			}
			if _, done := friendsOf[i][rel]; done {
				continue
			}
			rows, err := inst.Project(rel, []int{1}, map[int]eq.Value{0: q.User})
			if err != nil {
				return nil, err
			}
			list := []int{}
			for _, row := range rows {
				for _, j := range userIdx[row[0]] {
					if j != i && alive[j] {
						list = append(list, j)
					}
				}
			}
			friendsOf[i][rel] = list
		}
	}

	// Step 3: the global options list V(Q).
	seen := map[string]bool{}
	var vQ []db.Tuple
	for i := range qs {
		if !alive[i] {
			continue
		}
		for _, v := range options[i] {
			k := tupleKey(v)
			if !seen[k] {
				seen[k] = true
				vQ = append(vQ, v)
			}
		}
	}

	// Step 4: per value, restrict and clean.
	var cands []Candidate
	for _, v := range vQ {
		k := tupleKey(v)
		in := make([]bool, len(qs))
		var members []int
		for i := range qs {
			if alive[i] && optKey[i][k] {
				in[i] = true
				members = append(members, i)
			}
		}
		var surviving []int
		if opts.SweepCleaning {
			surviving = cleanSweep(sch, qs, members, in, userIdx, friendsOf)
		} else {
			surviving = cleanQueue(sch, qs, members, in, userIdx, friendsOf)
		}
		if opts.Trace != nil {
			opts.Trace.Values = append(opts.Trace.Values, ValueEvent{
				Value:     append([]eq.Value(nil), v...),
				Initial:   append([]int(nil), members...),
				Survivors: append([]int(nil), surviving...),
			})
		}
		if len(surviving) > 0 {
			cands = append(cands, Candidate{Value: append(db.Tuple(nil), v...), Members: surviving})
		}
	}
	if len(cands) == 0 {
		return nil, nil
	}

	sel := opts.Select
	if sel == nil {
		sel = MaxMembers
	}
	win := cands[sel(cands)]

	// Step 5: ground each member to a concrete tuple key — one database
	// query per member.
	keys := map[int]eq.Value{}
	for _, i := range win.Members {
		where, err := whereOf(sch, qs[i])
		if err != nil {
			return nil, err
		}
		for j, c := range sch.CoordCols {
			where[c] = win.Value[j]
		}
		t, ok, err := inst.SelectOne(sch.Table, where)
		if err != nil {
			return nil, err
		}
		if !ok {
			return nil, fmt.Errorf("consistent: internal error: member %d lost its tuple for value %v", i, win.Value)
		}
		keys[i] = t[sch.KeyCol]
	}
	return &Result{
		Value:      win.Value,
		Members:    win.Members,
		Keys:       keys,
		Candidates: cands,
		DBQueries:  inst.QueriesIssued() - start,
	}, nil
}

// whereOf converts a query's constant preferences into a column filter.
func whereOf(sch Schema, q Query) (map[int]eq.Value, error) {
	if len(q.Coord) != len(sch.CoordCols) {
		return nil, fmt.Errorf("consistent: query by %s has %d coordination prefs, schema has %d attributes", q.User, len(q.Coord), len(sch.CoordCols))
	}
	if len(q.Own) != len(sch.OwnCols) {
		return nil, fmt.Errorf("consistent: query by %s has %d own prefs, schema has %d attributes", q.User, len(q.Own), len(sch.OwnCols))
	}
	where := map[int]eq.Value{}
	for j, p := range q.Coord {
		if !p.Any {
			where[sch.CoordCols[j]] = p.Val
		}
	}
	for j, p := range q.Own {
		if !p.Any {
			where[sch.OwnCols[j]] = p.Val
		}
	}
	return where, nil
}

// friendRels returns the distinct relations query q's friend slots draw
// from.
func friendRels(sch Schema, q Query) []string {
	var out []string
	seen := map[string]bool{}
	for _, p := range q.Partners {
		if !p.AnyFriend {
			continue
		}
		rel := p.Rel
		if rel == "" {
			rel = sch.Friends
		}
		if !seen[rel] {
			seen[rel] = true
			out = append(out, rel)
		}
	}
	return out
}

// slotRel resolves a friend slot's relation against the schema default.
func slotRel(sch Schema, p Partner) string {
	if p.Rel != "" {
		return p.Rel
	}
	return sch.Friends
}

// requirementsHold checks query i's coordination requirements against
// the current membership: every constant partner must be present, and
// the friend slots must be fillable by *distinct* present friends. With
// a single friendship relation that is a counting argument; with slots
// drawing from different relations it is a bipartite matching between
// slots and candidate friends, solved with augmenting paths (slot
// counts are tiny in practice).
func requirementsHold(sch Schema, qs []Query, i int, in []bool, userIdx map[eq.Value][]int, friendsOf []map[string][]int) bool {
	var slots [][]eq.Value // per friend slot: candidate partner users
	for _, p := range qs[i].Partners {
		if p.AnyFriend {
			var cands []eq.Value
			seen := map[eq.Value]bool{}
			for _, j := range friendsOf[i][slotRel(sch, p)] {
				if in[j] && !seen[qs[j].User] {
					seen[qs[j].User] = true
					cands = append(cands, qs[j].User)
				}
			}
			if len(cands) == 0 {
				return false
			}
			slots = append(slots, cands)
			continue
		}
		found := false
		for _, j := range userIdx[p.Name] {
			if in[j] {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return matchSlots(slots)
}

// matchSlots decides whether every slot can be assigned a distinct
// candidate (a system of distinct representatives), via augmenting-path
// bipartite matching.
func matchSlots(slots [][]eq.Value) bool {
	if len(slots) <= 1 {
		return true // emptiness per slot was already checked
	}
	owner := map[eq.Value]int{} // candidate -> slot currently using it
	var try func(s int, visited map[eq.Value]bool) bool
	try = func(s int, visited map[eq.Value]bool) bool {
		for _, c := range slots[s] {
			if visited[c] {
				continue
			}
			visited[c] = true
			if o, taken := owner[c]; !taken {
				owner[c] = s
				return true
			} else if try(o, visited) {
				owner[c] = s
				return true
			}
		}
		return false
	}
	for s := range slots {
		if !try(s, map[eq.Value]bool{}) {
			return false
		}
	}
	return true
}

// cleanQueue removes queries whose requirements fail, propagating
// removals with a work queue (each removal re-examines only the nodes
// that might depend on the removed one's user).
func cleanQueue(sch Schema, qs []Query, members []int, in []bool, userIdx map[eq.Value][]int, friendsOf []map[string][]int) []int {
	queue := append([]int(nil), members...)
	inQueue := map[int]bool{}
	for _, i := range queue {
		inQueue[i] = true
	}
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		inQueue[i] = false
		if !in[i] {
			continue
		}
		if requirementsHold(sch, qs, i, in, userIdx, friendsOf) {
			continue
		}
		in[i] = false
		// Anyone still in might have depended on i; only those that can
		// reference i's user by constant or by friendship need requeueing.
		for _, j := range members {
			if in[j] && !inQueue[j] && dependsOn(qs, j, i, friendsOf) {
				queue = append(queue, j)
				inQueue[j] = true
			}
		}
	}
	return survivors(members, in)
}

func dependsOn(qs []Query, j, i int, friendsOf []map[string][]int) bool {
	for _, p := range qs[j].Partners {
		if !p.AnyFriend && p.Name == qs[i].User {
			return true
		}
	}
	for _, list := range friendsOf[j] {
		for _, f := range list {
			if f == i {
				return true
			}
		}
	}
	return false
}

// cleanSweep is the naive fixpoint: full passes until no removal.
func cleanSweep(sch Schema, qs []Query, members []int, in []bool, userIdx map[eq.Value][]int, friendsOf []map[string][]int) []int {
	for {
		changed := false
		for _, i := range members {
			if !in[i] {
				continue
			}
			if !requirementsHold(sch, qs, i, in, userIdx, friendsOf) {
				in[i] = false
				changed = true
			}
		}
		if !changed {
			return survivors(members, in)
		}
	}
}

func survivors(members []int, in []bool) []int {
	var out []int
	for _, i := range members {
		if in[i] {
			out = append(out, i)
		}
	}
	sort.Ints(out)
	return out
}

// tupleKey renders a tuple into a map key.
func tupleKey(t db.Tuple) string {
	k := ""
	for _, v := range t {
		k += string(v) + "\x00"
	}
	return k
}
