package consistent

import (
	"fmt"
	"strconv"

	"entangled/internal/db"
	"entangled/internal/eq"
)

// ToEntangled translates an A-consistent query into the general
// entangled-query form of §5:
//
//	{R(y1, f1), R(y2, c2), ...}
//	R(x, User) :- S(x, ax1, ..., axd), F(User, f1), S(yi, ai1, ..., aid), ...
//
// Coordination attributes share one term between the user and every
// partner (the same constant, or a shared variable); non-coordination
// attributes get fresh distinct variables for partners (and a constant
// or fresh variable for the user), exactly matching Definitions 7-9.
// The translation exists to interoperate with the generic algorithms of
// package coord and to test Proposition 1.
func ToEntangled(sch Schema, q Query, inst *db.Instance) (eq.Query, error) {
	s, ok := inst.Relation(sch.Table)
	if !ok {
		return eq.Query{}, fmt.Errorf("consistent: relation %s not in instance", sch.Table)
	}
	d := s.Arity()

	// Shared coordination terms: one per coordination attribute.
	coordTerm := make(map[int]eq.Term)
	for j, c := range sch.CoordCols {
		p := q.Coord[j]
		if p.Any {
			coordTerm[c] = eq.V("a" + strconv.Itoa(j))
		} else {
			coordTerm[c] = eq.C(p.Val)
		}
	}
	ownPref := make(map[int]Pref)
	for j, c := range sch.OwnCols {
		ownPref[c] = q.Own[j]
	}

	fresh := 0
	nextVar := func(stem string) eq.Term {
		fresh++
		return eq.V(stem + strconv.Itoa(fresh))
	}

	// The user's own tuple atom S(x, ...).
	selfAtom := eq.Atom{Rel: sch.Table, Args: make([]eq.Term, d)}
	xKey := eq.V("x")
	for c := 0; c < d; c++ {
		if c == sch.KeyCol {
			selfAtom.Args[c] = xKey
			continue
		}
		if t, isCoord := coordTerm[c]; isCoord {
			selfAtom.Args[c] = t
			continue
		}
		if p, isOwn := ownPref[c]; isOwn && !p.Any {
			selfAtom.Args[c] = eq.C(p.Val)
		} else {
			selfAtom.Args[c] = nextVar("u")
		}
	}

	out := eq.Query{ID: string(q.User)}
	out.Head = []eq.Atom{eq.NewAtom("R", xKey, eq.C(q.User))}
	out.Body = []eq.Atom{selfAtom}

	for pi, p := range q.Partners {
		yi := eq.V("y" + strconv.Itoa(pi))
		partnerAtom := eq.Atom{Rel: sch.Table, Args: make([]eq.Term, d)}
		for c := 0; c < d; c++ {
			switch {
			case c == sch.KeyCol:
				partnerAtom.Args[c] = yi
			default:
				if t, isCoord := coordTerm[c]; isCoord {
					partnerAtom.Args[c] = t
				} else {
					partnerAtom.Args[c] = nextVar("w") // A-non-coordinating: fresh distinct variable
				}
			}
		}
		out.Body = append(out.Body, partnerAtom)
		if p.AnyFriend {
			fi := eq.V("f" + strconv.Itoa(pi))
			out.Post = append(out.Post, eq.NewAtom("R", yi, fi))
			out.Body = append(out.Body, eq.NewAtom(sch.Friends, eq.C(q.User), fi))
		} else {
			out.Post = append(out.Post, eq.NewAtom("R", yi, eq.C(p.Name)))
		}
	}
	return out, nil
}

// ToEntangledSet maps ToEntangled over a query set.
func ToEntangledSet(sch Schema, qs []Query, inst *db.Instance) ([]eq.Query, error) {
	out := make([]eq.Query, len(qs))
	for i, q := range qs {
		e, err := ToEntangled(sch, q, inst)
		if err != nil {
			return nil, err
		}
		out[i] = e
	}
	return out, nil
}
