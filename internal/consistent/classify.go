package consistent

import (
	"fmt"

	"entangled/internal/eq"
)

// This file implements the formal classification of §5: Definitions 7
// (A-coordinating), 8 (A-non-coordinating) and 9 (A-consistent) over
// entangled queries of the section's general form
//
//	{R(y1, f1), R(y2, c2), ...}
//	R(x, User) :- S(x, ax1..axd), F(User, f1), S(yi, ai1..aid), ...
//
// The checks let callers validate that a hand-written entangled query
// set is within the fragment the Consistent Coordination Algorithm is
// proven for (Proposition 1).

// GeneralForm is the §5 decomposition of an entangled query: the user's
// own S-atom and one S-atom per coordination partner.
type GeneralForm struct {
	User     eq.Value
	Self     eq.Atom   // S(x, ax1, ..., axd)
	Partners []eq.Atom // S(yi, ai1, ..., aid), in postcondition order
}

// ParseGeneralForm checks that q has the §5 shape over the schema and
// decomposes it. The head must be R(x, User) with constant user and
// variable key; every postcondition must be R(yi, partner); each yi must
// be the key of exactly one S-atom of the body.
func ParseGeneralForm(sch Schema, q eq.Query) (GeneralForm, error) {
	var gf GeneralForm
	if len(q.Head) != 1 || len(q.Head[0].Args) != 2 {
		return gf, fmt.Errorf("consistent: query %s: head must be R(x, User)", q.ID)
	}
	head := q.Head[0]
	if head.Args[0].IsVar() == false || head.Args[1].IsVar() {
		return gf, fmt.Errorf("consistent: query %s: head must bind a variable key to a constant user", q.ID)
	}
	gf.User = head.Args[1].Const()
	keyVar := head.Args[0].Name

	// Index the body's S-atoms by their key term.
	sAtoms := map[string]eq.Atom{}
	for _, b := range q.Body {
		if b.Rel != sch.Table {
			continue
		}
		if len(b.Args) <= sch.KeyCol || !b.Args[sch.KeyCol].IsVar() {
			return gf, fmt.Errorf("consistent: query %s: S-atom %s must have a variable key", q.ID, b)
		}
		k := b.Args[sch.KeyCol].Name
		if _, dup := sAtoms[k]; dup {
			return gf, fmt.Errorf("consistent: query %s: two S-atoms share key variable %s", q.ID, k)
		}
		sAtoms[k] = b
	}
	self, ok := sAtoms[keyVar]
	if !ok {
		return gf, fmt.Errorf("consistent: query %s: no S-atom carries the head key %s", q.ID, keyVar)
	}
	gf.Self = self

	for _, p := range q.Post {
		if p.Rel != head.Rel || len(p.Args) != 2 {
			return gf, fmt.Errorf("consistent: query %s: postcondition %s must be R(y, partner)", q.ID, p)
		}
		if !p.Args[0].IsVar() {
			return gf, fmt.Errorf("consistent: query %s: postcondition %s must have a variable key", q.ID, p)
		}
		pa, ok := sAtoms[p.Args[0].Name]
		if !ok {
			return gf, fmt.Errorf("consistent: query %s: postcondition key %s has no S-atom", q.ID, p.Args[0].Name)
		}
		gf.Partners = append(gf.Partners, pa)
	}
	return gf, nil
}

// IsACoordinating implements Definition 7: for every attribute in attrs,
// the user specified the same constant or variable for himself and all
// his coordination partners (a^x_j == a^i_j syntactically).
func (gf GeneralForm) IsACoordinating(attrs []int) bool {
	for _, j := range attrs {
		for _, pa := range gf.Partners {
			if pa.Args[j] != gf.Self.Args[j] {
				return false
			}
		}
	}
	return true
}

// IsANonCoordinating implements Definition 8: for every attribute in
// attrs, all partner terms are distinct variables (and the user's own
// term, when a variable, is distinct from them too).
func (gf GeneralForm) IsANonCoordinating(attrs []int) bool {
	for _, j := range attrs {
		seen := map[string]bool{}
		for _, pa := range gf.Partners {
			t := pa.Args[j]
			if !t.IsVar() || seen[t.Name] {
				return false
			}
			seen[t.Name] = true
		}
		if self := gf.Self.Args[j]; self.IsVar() && seen[self.Name] {
			return false
		}
	}
	return true
}

// IsAConsistent implements Definition 9: A-coordinating on the schema's
// coordination attributes and non-coordinating on the remaining
// attributes of S (everything except the key and A).
func IsAConsistent(sch Schema, q eq.Query, arity int) (bool, error) {
	gf, err := ParseGeneralForm(sch, q)
	if err != nil {
		return false, err
	}
	inA := map[int]bool{sch.KeyCol: true}
	for _, c := range sch.CoordCols {
		inA[c] = true
	}
	var rest []int
	for c := 0; c < arity; c++ {
		if !inA[c] {
			rest = append(rest, c)
		}
	}
	return gf.IsACoordinating(sch.CoordCols) && gf.IsANonCoordinating(rest), nil
}
