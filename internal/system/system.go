package system

import (
	"fmt"
	"sync"

	"entangled/internal/coord"
	"entangled/internal/db"
	"entangled/internal/eq"
	"entangled/internal/unify"
)

// Outcome reports what a Submit call achieved.
type Outcome struct {
	// Coordinated lists the queries answered by this submission (empty
	// when the new query is parked as pending).
	Coordinated []eq.Query
	// Values maps each coordinated query's ID to its variable
	// assignment.
	Values map[string]map[string]eq.Value
	// Pending is the number of queries still waiting after this call.
	Pending int
}

// Coordinator is the online coordination module. It is safe for
// concurrent use.
type Coordinator struct {
	mu      sync.Mutex
	inst    *db.Instance
	opts    coord.Options
	pending []eq.Query
	seq     int
}

// New creates a coordinator over the given database instance.
func New(inst *db.Instance, opts coord.Options) *Coordinator {
	return &Coordinator{inst: inst, opts: opts}
}

// Pending returns a copy of the queries currently waiting for partners.
func (c *Coordinator) Pending() []eq.Query {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]eq.Query, len(c.pending))
	for i, q := range c.pending {
		out[i] = q.Clone()
	}
	return out
}

// Submit adds a query, evaluates the connected component it belongs to,
// and — when a coordinating set is found — answers and retires those
// queries. Queries whose component is currently unsatisfiable stay
// pending and may coordinate when a later arrival completes their
// component.
func (c *Coordinator) Submit(q eq.Query) (*Outcome, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if q.ID == "" {
		q.ID = fmt.Sprintf("anon-%d", c.seq)
	}
	c.seq++
	for _, p := range c.pending {
		if p.ID == q.ID {
			return nil, fmt.Errorf("system: duplicate query id %q", q.ID)
		}
	}
	c.pending = append(c.pending, q)
	return c.evaluateComponentOf(len(c.pending) - 1)
}

// Flush evaluates every connected component of the pending set and
// retires whatever coordinates; it returns one outcome per component
// that produced an answer.
func (c *Coordinator) Flush() ([]*Outcome, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var outs []*Outcome
	for {
		progressed := false
		for i := range c.pending {
			out, err := c.evaluateComponentOf(i)
			if err != nil {
				return outs, err
			}
			if len(out.Coordinated) > 0 {
				outs = append(outs, out)
				progressed = true
				break // pending changed under us; restart the scan
			}
		}
		if !progressed {
			return outs, nil
		}
	}
}

// evaluateComponentOf evaluates the weakly connected component of the
// coordination graph containing pending query idx. Caller holds mu.
func (c *Coordinator) evaluateComponentOf(idx int) (*Outcome, error) {
	comp := c.componentOf(idx)
	sub := make([]eq.Query, len(comp))
	for i, j := range comp {
		sub[i] = c.pending[j]
	}
	res, err := coord.SCCCoordinate(sub, c.inst, c.opts)
	if err != nil {
		// Leave the offending query pending but surface the error (an
		// unsafe component cannot be evaluated by this algorithm).
		return nil, err
	}
	out := &Outcome{Values: map[string]map[string]eq.Value{}}
	if res == nil {
		out.Pending = len(c.pending)
		return out, nil
	}
	retire := map[int]bool{}
	for _, si := range res.Set {
		orig := comp[si]
		retire[orig] = true
		out.Coordinated = append(out.Coordinated, c.pending[orig])
		out.Values[c.pending[orig].ID] = res.Values[si]
	}
	var remaining []eq.Query
	for i, q := range c.pending {
		if !retire[i] {
			remaining = append(remaining, q)
		}
	}
	c.pending = remaining
	out.Pending = len(c.pending)
	return out, nil
}

// componentOf returns the indices of the pending queries weakly
// connected to pending[idx] in the coordination graph (treating
// unifiable post/head pairs as undirected adjacency), sorted ascending.
func (c *Coordinator) componentOf(idx int) []int {
	n := len(c.pending)
	adj := make([][]int, n)
	link := func(a, b int) {
		adj[a] = append(adj[a], b)
		adj[b] = append(adj[b], a)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			if postsUnify(c.pending[i], c.pending[j]) {
				link(i, j)
			}
		}
	}
	seen := make([]bool, n)
	stack := []int{idx}
	seen[idx] = true
	var out []int
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		out = append(out, v)
		for _, w := range adj[v] {
			if !seen[w] {
				seen[w] = true
				stack = append(stack, w)
			}
		}
	}
	sortInts(out)
	return out
}

// postsUnify reports whether some postcondition of a unifies with some
// head of b.
func postsUnify(a, b eq.Query) bool {
	for _, p := range a.Post {
		for _, h := range b.Head {
			if unify.Unifiable(p, h) {
				return true
			}
		}
	}
	return false
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// Cancel withdraws a pending query by ID before it coordinates; it
// reports whether the query was found. Once a query has been answered
// (retired by Submit or Flush) there is nothing left to cancel.
func (c *Coordinator) Cancel(id string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, q := range c.pending {
		if q.ID == id {
			c.pending = append(c.pending[:i], c.pending[i+1:]...)
			return true
		}
	}
	return false
}

// PendingCount returns the number of queries currently waiting.
func (c *Coordinator) PendingCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.pending)
}
