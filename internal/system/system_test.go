package system

import (
	"testing"

	"entangled/internal/coord"
	"entangled/internal/db"
	"entangled/internal/eq"
	"entangled/internal/workload"
)

func newInstance() *db.Instance {
	in := db.NewInstance()
	workload.UserTable(in, 20)
	return in
}

func TestSubmitLoneQueryCoordinatesImmediately(t *testing.T) {
	c := New(newInstance(), coord.Options{})
	q := eq.MustParseSet(`query solo { head: R(U0, x) body: T(x, 'c1') }`)[0]
	out, err := c.Submit(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Coordinated) != 1 || out.Coordinated[0].ID != "solo" {
		t.Fatalf("outcome = %+v", out)
	}
	if out.Pending != 0 {
		t.Fatalf("pending = %d", out.Pending)
	}
	if len(c.Pending()) != 0 {
		t.Fatal("answered query must be retired")
	}
}

func TestChainCoordinatesWhenComplete(t *testing.T) {
	c := New(newInstance(), coord.Options{})
	qs := workload.ListQueries(3, 20)
	// q0 needs q1 which needs q2; submitting in order parks the first
	// two.
	for i := 0; i < 2; i++ {
		out, err := c.Submit(qs[i])
		if err != nil {
			t.Fatal(err)
		}
		if len(out.Coordinated) != 0 {
			t.Fatalf("query %d should be pending, got %+v", i, out)
		}
	}
	out, err := c.Submit(qs[2])
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Coordinated) != 3 {
		t.Fatalf("whole chain should coordinate: %+v", out)
	}
	if out.Pending != 0 {
		t.Fatalf("pending = %d", out.Pending)
	}
	// Everybody got a value for every variable.
	for _, q := range qs {
		vals := out.Values[q.ID]
		for _, v := range q.Vars() {
			if _, ok := vals[v]; !ok {
				t.Fatalf("query %s variable %s unassigned", q.ID, v)
			}
		}
	}
}

func TestReverseOrderRetiresTailFirst(t *testing.T) {
	// Submitting the tail first answers it alone; the earlier queries
	// then wait forever (their partner is gone) — the choose-1 contract.
	c := New(newInstance(), coord.Options{})
	qs := workload.ListQueries(2, 20)
	out, err := c.Submit(qs[1])
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Coordinated) != 1 {
		t.Fatalf("tail coordinates alone: %+v", out)
	}
	out, err = c.Submit(qs[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Coordinated) != 0 || out.Pending != 1 {
		t.Fatalf("head must wait: %+v", out)
	}
}

func TestDuplicateIDRejected(t *testing.T) {
	c := New(newInstance(), coord.Options{})
	qs := workload.ListQueries(2, 20)
	if _, err := c.Submit(qs[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit(qs[0]); err == nil {
		t.Fatal("duplicate id must be rejected")
	}
}

func TestAnonymousIDsAssigned(t *testing.T) {
	c := New(newInstance(), coord.Options{})
	q := eq.MustParseSet(`query x { head: R(U0, x) body: T(x, 'c1') }`)[0]
	q.ID = ""
	out, err := c.Submit(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Coordinated) != 1 || out.Coordinated[0].ID == "" {
		t.Fatalf("anonymous query must get an id: %+v", out)
	}
}

func TestFlush(t *testing.T) {
	c := New(newInstance(), coord.Options{})
	// Two independent pairs, parked by submitting only their heads.
	qs := eq.MustParseSet(`
query a0 { post: R(A1, y) head: R(A0, x) body: T(x, 'c1') }
query a1 { head: R(A1, x) body: T(x, 'c2') }
query b0 { post: R(B1, y) head: R(B0, x) body: T(x, 'c3') }
query b1 { head: R(B1, x) body: T(x, 'c4') }`)
	// Submit the waiting heads first.
	for _, i := range []int{0, 2} {
		out, err := c.Submit(qs[i])
		if err != nil {
			t.Fatal(err)
		}
		if len(out.Coordinated) != 0 {
			t.Fatalf("%s should wait: %+v", qs[i].ID, out)
		}
	}
	// The tails arrive; each submission resolves its pair.
	for _, i := range []int{1, 3} {
		out, err := c.Submit(qs[i])
		if err != nil {
			t.Fatal(err)
		}
		if len(out.Coordinated) != 2 {
			t.Fatalf("pair of %s should coordinate: %+v", qs[i].ID, out)
		}
	}
	outs, err := c.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 0 {
		t.Fatalf("nothing left to flush: %v", outs)
	}
}

func TestCancel(t *testing.T) {
	c := New(newInstance(), coord.Options{})
	qs := workload.ListQueries(3, 20)
	// Park the first two (they wait for successors).
	for i := 0; i < 2; i++ {
		if _, err := c.Submit(qs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if c.PendingCount() != 2 {
		t.Fatalf("pending = %d", c.PendingCount())
	}
	if !c.Cancel(qs[1].ID) {
		t.Fatal("cancel should find the pending query")
	}
	if c.Cancel(qs[1].ID) {
		t.Fatal("second cancel should miss")
	}
	// The tail now arrives; q0's partner q1 is gone, so only the tail
	// coordinates (alone).
	out, err := c.Submit(qs[2])
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Coordinated) != 1 || out.Coordinated[0].ID != qs[2].ID {
		t.Fatalf("only the tail coordinates: %+v", out)
	}
	if c.PendingCount() != 1 {
		t.Fatalf("q0 still waits: %d", c.PendingCount())
	}
}
