// Package system provides the online front end described in §6.1: a
// Youtopia-style coordination module that accepts entangled queries one
// at a time, maintains the coordination graph incrementally, evaluates
// the connected component each new query joins, and retires coordinated
// queries (choose-1 semantics: once a query is answered it leaves the
// system).
package system
