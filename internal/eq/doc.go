// Package eq defines the entangled-query model of Gupta et al. (SIGMOD
// 2011) as used by Mamouras et al., "The Complexity of Social
// Coordination" (PVLDB 5(11), 2012).
//
// An entangled query is a triple {P} H :- B where P is a list of
// postcondition atoms, H a list of head atoms and B a conjunctive body.
// Relation symbols in P and H are answer relations, disjoint from the
// database schema; body atoms range over database relations.
//
// Values are opaque constants compared only for equality; anything
// that hashes them (the hash indexes of internal/db and the shard
// router of db.ShardedInstance) hashes their byte rendering, so equal
// Values always land in the same index bucket and on the same shard.
// Queries themselves carry no database state: the same query set can
// be evaluated against any db.Store, which is what the shard
// equivalence guarantees rest on.
package eq
