package eq

import (
	"strings"
	"testing"
)

func TestTermConstructors(t *testing.T) {
	v := V("x")
	if !v.IsVar() || v.Name != "x" {
		t.Fatalf("V(x) = %+v", v)
	}
	c := C("Zurich")
	if c.IsVar() || c.Const() != "Zurich" {
		t.Fatalf("C(Zurich) = %+v", c)
	}
}

func TestConstOnVarPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Const on a variable should panic")
		}
	}()
	_ = V("x").Const()
}

func TestTermString(t *testing.T) {
	cases := []struct {
		t    Term
		want string
	}{
		{V("x1"), "x1"},
		{C("Zurich"), "Zurich"},
		{C("zurich"), "'zurich'"}, // lowercase constant must quote
		{C("101"), "101"},
		{C(""), "''"},
		{C("two words"), "'two words'"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("String(%+v) = %q, want %q", c.t, got, c.want)
		}
	}
}

func TestAtomStringAndEqual(t *testing.T) {
	a := NewAtom("R", C("Chris"), V("x"))
	if a.String() != "R(Chris, x)" {
		t.Fatalf("String = %q", a.String())
	}
	b := NewAtom("R", C("Chris"), V("x"))
	if !a.Equal(b) {
		t.Fatal("identical atoms must be Equal")
	}
	if a.Equal(NewAtom("R", C("Chris"), V("y"))) {
		t.Fatal("different vars must not be Equal")
	}
	if a.Equal(NewAtom("Q", C("Chris"), V("x"))) {
		t.Fatal("different relations must not be Equal")
	}
	if a.Equal(NewAtom("R", C("Chris"))) {
		t.Fatal("different arities must not be Equal")
	}
}

func TestAtomGround(t *testing.T) {
	if NewAtom("R", C("a"), V("x")).Ground() {
		t.Fatal("atom with variable is not ground")
	}
	if !NewAtom("R", C("a"), C("b")).Ground() {
		t.Fatal("constant atom is ground")
	}
}

func TestAtomCloneIndependent(t *testing.T) {
	a := NewAtom("R", V("x"))
	b := a.Clone()
	b.Args[0] = C("c")
	if !a.Args[0].IsVar() {
		t.Fatal("Clone must not share argument storage")
	}
}

func TestQueryVars(t *testing.T) {
	q := Query{
		Post: []Atom{NewAtom("R", C("Chris"), V("x"))},
		Head: []Atom{NewAtom("R", C("Gwyneth"), V("x"))},
		Body: []Atom{NewAtom("Flights", V("x"), C("Zurich")), NewAtom("Hotels", V("y"), V("z"))},
	}
	got := q.Vars()
	want := []string{"x", "y", "z"}
	if len(got) != len(want) {
		t.Fatalf("Vars = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Vars = %v, want %v", got, want)
		}
	}
}

func TestQueryRename(t *testing.T) {
	q := Query{
		Head: []Atom{NewAtom("R", C("A"), V("x"))},
		Body: []Atom{NewAtom("T", V("x"), C("c"))},
	}
	r := q.Rename("q7.")
	if r.Head[0].Args[1].Name != "q7.x" {
		t.Fatalf("head var not renamed: %v", r.Head[0])
	}
	if r.Body[0].Args[0].Name != "q7.x" {
		t.Fatalf("body var not renamed: %v", r.Body[0])
	}
	if r.Head[0].Args[0].Name != "A" {
		t.Fatal("constants must not be renamed")
	}
	if q.Head[0].Args[1].Name != "x" {
		t.Fatal("Rename must not mutate the original")
	}
}

func TestQueryString(t *testing.T) {
	q := Query{
		Post: []Atom{NewAtom("R", C("Chris"), V("x"))},
		Head: []Atom{NewAtom("R", C("Gwyneth"), V("x"))},
		Body: []Atom{NewAtom("Flights", V("x"), C("Zurich"))},
	}
	want := "{R(Chris, x)} R(Gwyneth, x) :- Flights(x, Zurich)"
	if got := q.String(); got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
	empty := Query{Head: []Atom{NewAtom("C", C("1"))}}
	if !strings.Contains(empty.String(), ":- true") {
		t.Fatalf("empty body should render as true: %q", empty.String())
	}
}

func TestValidate(t *testing.T) {
	schema := map[string]int{"Flights": 2}
	good := []Query{{
		ID:   "q1",
		Post: []Atom{NewAtom("R", C("Chris"), V("x"))},
		Head: []Atom{NewAtom("R", C("Gwyneth"), V("x"))},
		Body: []Atom{NewAtom("Flights", V("x"), C("Zurich"))},
	}}
	if err := Validate(good, schema); err != nil {
		t.Fatalf("valid set rejected: %v", err)
	}

	unknownRel := []Query{{ID: "q", Body: []Atom{NewAtom("Nope", V("x"))}, Head: []Atom{NewAtom("R", V("x"))}}}
	if err := Validate(unknownRel, schema); err == nil {
		t.Fatal("body over unknown relation must fail")
	}

	badArity := []Query{{ID: "q", Body: []Atom{NewAtom("Flights", V("x"))}, Head: []Atom{NewAtom("R", V("x"))}}}
	if err := Validate(badArity, schema); err == nil {
		t.Fatal("wrong body arity must fail")
	}

	collide := []Query{{ID: "q", Head: []Atom{NewAtom("Flights", V("x"), V("y"))}}}
	if err := Validate(collide, schema); err == nil {
		t.Fatal("answer relation colliding with schema must fail")
	}

	inconsistent := []Query{
		{ID: "a", Head: []Atom{NewAtom("R", V("x"))}},
		{ID: "b", Head: []Atom{NewAtom("R", V("x"), V("y"))}},
	}
	if err := Validate(inconsistent, schema); err == nil {
		t.Fatal("inconsistent answer arity must fail")
	}
}

func TestAnswerRels(t *testing.T) {
	qs := []Query{
		{Post: []Atom{NewAtom("R", V("x"))}, Head: []Atom{NewAtom("Q", V("x"))}},
		{Head: []Atom{NewAtom("R", V("y"))}},
	}
	rels := AnswerRels(qs)
	if !rels["R"] || !rels["Q"] || len(rels) != 2 {
		t.Fatalf("AnswerRels = %v", rels)
	}
}
