package eq

import (
	"math/rand"
	"strconv"
	"testing"
	"testing/quick"
)

func TestNormalize(t *testing.T) {
	q := MustParseSet(`
query a {
  post: R(Chris, foo)
  head: R(Gwyneth, foo)
  body: Flights(foo, Zurich), Hotels(bar, baz)
}`)[0]
	n := q.Normalize()
	if n.Post[0].Args[1] != V("v0") {
		t.Fatalf("first variable should become v0: %v", n.Post[0])
	}
	if n.Body[1].Args[0] != V("v1") || n.Body[1].Args[1] != V("v2") {
		t.Fatalf("body vars: %v", n.Body[1])
	}
	// Same variable keeps the same normalized name everywhere.
	if n.Head[0].Args[1] != V("v0") || n.Body[0].Args[0] != V("v0") {
		t.Fatalf("foo must normalize consistently: %v %v", n.Head[0], n.Body[0])
	}
	// The original is untouched.
	if q.Post[0].Args[1] != V("foo") {
		t.Fatal("Normalize must not mutate")
	}
}

func TestAlphaEqual(t *testing.T) {
	a := MustParseSet(`query a { post: R(C, x) head: R(G, x) body: F(x, Z) }`)[0]
	b := MustParseSet(`query b { post: R(C, banana) head: R(G, banana) body: F(banana, Z) }`)[0]
	if !AlphaEqual(a, b) {
		t.Fatal("renamed copies are alpha-equal")
	}
	c := MustParseSet(`query c { post: R(C, x) head: R(G, y) body: F(x, Z) }`)[0]
	if AlphaEqual(a, c) {
		t.Fatal("breaking the x sharing changes the query")
	}
	d := MustParseSet(`query d { post: R(C, x) head: R(G, x) body: F(x, W) }`)[0]
	if AlphaEqual(a, d) {
		t.Fatal("different constants differ")
	}
}

// Property: every query is alpha-equal to any consistent renaming of
// itself, and Normalize is idempotent.
func TestQuickAlphaInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	f := func() bool {
		q := randomQuery(rng)
		renamed := q.Rename("zz" + strconv.Itoa(rng.Intn(100)) + ".")
		if !AlphaEqual(q, renamed) {
			return false
		}
		n := q.Normalize()
		return n.String() == n.Normalize().String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
