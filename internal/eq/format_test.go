package eq

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestFormatParseable(t *testing.T) {
	qs := MustParseSet(`
query gwyneth {
  post: R(Chris, x)
  head: R(Gwyneth, x)
  body: Flights(x, Zurich)
}
query chris {
  head: R(Chris, y)
  body: Flights(y, Zurich)
}`)
	text := FormatSet(qs)
	back, err := ParseSet(text)
	if err != nil {
		t.Fatalf("Format output must re-parse: %v\n%s", err, text)
	}
	if len(back) != len(qs) {
		t.Fatalf("query count: %d", len(back))
	}
	for i := range qs {
		if qs[i].String() != back[i].String() || qs[i].ID != back[i].ID {
			t.Fatalf("round trip broke query %d:\n%s\n%s", i, qs[i], back[i])
		}
	}
}

func TestFormatEmptyID(t *testing.T) {
	q := Query{Head: []Atom{NewAtom("R", V("x"))}}
	text := Format(q)
	if !strings.HasPrefix(text, "query q {") {
		t.Fatalf("empty id should default: %s", text)
	}
	if _, err := Parse(text); err != nil {
		t.Fatal(err)
	}
}

func TestFormatQuotesLowercaseConstants(t *testing.T) {
	q := Query{ID: "x", Head: []Atom{NewAtom("R", C("lower"), C("two words"))}}
	back, err := Parse(Format(q))
	if err != nil {
		t.Fatal(err)
	}
	if back.Head[0].Args[0] != C("lower") || back.Head[0].Args[1] != C("two words") {
		t.Fatalf("constants mangled: %v", back.Head[0])
	}
}

// Property: Format then Parse is the identity on random queries.
func TestQuickFormatParseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(94))
	f := func() bool {
		q := randomQuery(rng)
		back, err := Parse(Format(q))
		if err != nil {
			return false
		}
		return back.String() == q.String() && back.ID == q.ID
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}
