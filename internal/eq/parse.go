package eq

import (
	"fmt"
	"unicode"
)

// The textual query format accepted by Parse / ParseSet:
//
//	query qC {
//	  post: R(G, x1)
//	  head: R(C, x1), Q(C, x2)
//	  body: F(x1, x), H(x2, x)
//	}
//
// Tokens starting with a lowercase letter are variables; everything else
// (capitalised identifiers, numbers, 'single-quoted strings') is a
// constant. An omitted section or the keyword "true" denotes the empty
// atom list. Line comments start with '#'.

// ParseSet parses a whole query set from the textual format.
func ParseSet(src string) ([]Query, error) {
	p := &parser{toks: lex(src)}
	var out []Query
	for !p.eof() {
		q, err := p.query()
		if err != nil {
			return nil, err
		}
		out = append(out, q)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("eq: no queries in input")
	}
	return out, nil
}

// Parse parses a single query from the textual format.
func Parse(src string) (Query, error) {
	qs, err := ParseSet(src)
	if err != nil {
		return Query{}, err
	}
	if len(qs) != 1 {
		return Query{}, fmt.Errorf("eq: expected one query, got %d", len(qs))
	}
	return qs[0], nil
}

// ParseAtoms parses a comma-separated atom list such as "R(a, x), Q(b, y)".
func ParseAtoms(src string) ([]Atom, error) {
	p := &parser{toks: lex(src)}
	as, err := p.atomList()
	if err != nil {
		return nil, err
	}
	if !p.eof() {
		return nil, fmt.Errorf("eq: trailing input after atom list at %q", p.peek().text)
	}
	return as, nil
}

// MustParseSet is ParseSet that panics on error; intended for examples
// and tests where the input is a literal.
func MustParseSet(src string) []Query {
	qs, err := ParseSet(src)
	if err != nil {
		panic(err)
	}
	return qs
}

type tokKind uint8

const (
	tokIdent tokKind = iota
	tokConst         // quoted or numeric literal
	tokPunct
	tokEOF
)

type token struct {
	kind tokKind
	text string
	pos  int
}

func lex(src string) []token {
	var toks []token
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == '#':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '\'':
			j := i + 1
			for j < len(src) && src[j] != '\'' {
				j++
			}
			toks = append(toks, token{tokConst, src[i+1 : min(j, len(src))], i})
			i = j + 1
		case c == '(' || c == ')' || c == ',' || c == '{' || c == '}' || c == ':':
			// ":-" lexes as ':' '-' handled below; we only need ':' here.
			toks = append(toks, token{tokPunct, string(c), i})
			i++
		case isIdentRune(rune(c)) || (c >= '0' && c <= '9'):
			j := i
			for j < len(src) && (isIdentRune(rune(src[j])) || (src[j] >= '0' && src[j] <= '9')) {
				j++
			}
			toks = append(toks, token{tokIdent, src[i:j], i})
			i = j
		default:
			toks = append(toks, token{tokPunct, string(c), i})
			i++
		}
	}
	toks = append(toks, token{tokEOF, "", len(src)})
	return toks
}

func isIdentRune(r rune) bool {
	return unicode.IsLetter(r) || r == '_' || r == '-'
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) peek() token { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }
func (p *parser) eof() bool   { return p.peek().kind == tokEOF }

func (p *parser) expect(text string) error {
	t := p.next()
	if t.text != text {
		return fmt.Errorf("eq: expected %q at offset %d, got %q", text, t.pos, t.text)
	}
	return nil
}

func (p *parser) query() (Query, error) {
	var q Query
	t := p.next()
	if t.text != "query" {
		return q, fmt.Errorf("eq: expected 'query' at offset %d, got %q", t.pos, t.text)
	}
	id := p.next()
	if id.kind != tokIdent && id.kind != tokConst {
		return q, fmt.Errorf("eq: expected query identifier at offset %d", id.pos)
	}
	q.ID = id.text
	if err := p.expect("{"); err != nil {
		return q, err
	}
	for p.peek().text != "}" {
		sec := p.next()
		if err := p.expect(":"); err != nil {
			return q, err
		}
		as, err := p.atomList()
		if err != nil {
			return q, err
		}
		switch sec.text {
		case "post":
			q.Post = as
		case "head":
			q.Head = as
		case "body":
			q.Body = as
		default:
			return q, fmt.Errorf("eq: unknown section %q at offset %d", sec.text, sec.pos)
		}
	}
	if err := p.expect("}"); err != nil {
		return q, err
	}
	return q, nil
}

// atomList parses a possibly empty comma-separated atom list. The list
// ends at a section keyword, '}' or EOF. The keyword "true" denotes the
// empty list.
func (p *parser) atomList() ([]Atom, error) {
	var out []Atom
	if p.peek().text == "true" {
		p.next()
		return out, nil
	}
	for {
		t := p.peek()
		if t.kind == tokEOF || t.text == "}" || p.atSectionStart() {
			return out, nil
		}
		a, err := p.atom()
		if err != nil {
			return nil, err
		}
		out = append(out, a)
		if p.peek().text == "," {
			p.next()
			continue
		}
		return out, nil
	}
}

// atSectionStart reports whether the upcoming tokens are "<name> :",
// which begins a new section inside a query block.
func (p *parser) atSectionStart() bool {
	t := p.peek()
	if t.kind != tokIdent {
		return false
	}
	switch t.text {
	case "post", "head", "body":
		return p.toks[p.i+1].text == ":"
	}
	return false
}

func (p *parser) atom() (Atom, error) {
	rel := p.next()
	if rel.kind != tokIdent {
		return Atom{}, fmt.Errorf("eq: expected relation name at offset %d, got %q", rel.pos, rel.text)
	}
	if err := p.expect("("); err != nil {
		return Atom{}, err
	}
	a := Atom{Rel: rel.text}
	for p.peek().text != ")" {
		t := p.next()
		switch {
		case t.kind == tokConst:
			a.Args = append(a.Args, C(Value(t.text)))
		case t.kind == tokIdent:
			a.Args = append(a.Args, identTerm(t.text))
		default:
			return Atom{}, fmt.Errorf("eq: unexpected token %q in atom at offset %d", t.text, t.pos)
		}
		if p.peek().text == "," {
			p.next()
		}
	}
	p.next() // consume ')'
	return a, nil
}

// identTerm classifies a bare identifier: a leading lowercase letter
// makes it a variable, anything else (capital, digit) a constant.
func identTerm(s string) Term {
	c := s[0]
	if c >= 'a' && c <= 'z' {
		return V(s)
	}
	return C(Value(s))
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
