package eq

import (
	"encoding/json"
	"fmt"
)

// The JSON wire format renders terms as tagged strings — "?x" for the
// variable x, "=v" for the constant v — so query files stay readable
// and the decoder is unambiguous for constants that begin with '?'.

// MarshalJSON encodes the term as "?name" (variable) or "=value"
// (constant).
func (t Term) MarshalJSON() ([]byte, error) {
	if t.IsVar() {
		return json.Marshal("?" + t.Name)
	}
	return json.Marshal("=" + t.Name)
}

// UnmarshalJSON decodes the tagged-string term encoding.
func (t *Term) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	if len(s) == 0 {
		return fmt.Errorf("eq: empty term")
	}
	switch s[0] {
	case '?':
		if len(s) == 1 {
			return fmt.Errorf("eq: variable term with empty name")
		}
		*t = V(s[1:])
	case '=':
		*t = C(Value(s[1:]))
	default:
		return fmt.Errorf("eq: term %q must start with '?' (variable) or '=' (constant)", s)
	}
	return nil
}

// atomJSON is the wire shape of an atom.
type atomJSON struct {
	Rel  string `json:"rel"`
	Args []Term `json:"args"`
}

// MarshalJSON encodes the atom as {"rel": ..., "args": [...]}.
func (a Atom) MarshalJSON() ([]byte, error) {
	return json.Marshal(atomJSON{Rel: a.Rel, Args: a.Args})
}

// UnmarshalJSON decodes the atom wire shape.
func (a *Atom) UnmarshalJSON(data []byte) error {
	var w atomJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	if w.Rel == "" {
		return fmt.Errorf("eq: atom without relation name")
	}
	a.Rel = w.Rel
	a.Args = w.Args
	return nil
}

// queryJSON is the wire shape of a query.
type queryJSON struct {
	ID   string `json:"id,omitempty"`
	Post []Atom `json:"post,omitempty"`
	Head []Atom `json:"head"`
	Body []Atom `json:"body,omitempty"`
}

// MarshalJSON encodes the query with its four sections.
func (q Query) MarshalJSON() ([]byte, error) {
	return json.Marshal(queryJSON{ID: q.ID, Post: q.Post, Head: q.Head, Body: q.Body})
}

// UnmarshalJSON decodes the query wire shape.
func (q *Query) UnmarshalJSON(data []byte) error {
	var w queryJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	q.ID = w.ID
	q.Post = w.Post
	q.Head = w.Head
	q.Body = w.Body
	return nil
}

// EncodeSet renders a query set as indented JSON.
func EncodeSet(qs []Query) ([]byte, error) {
	return json.MarshalIndent(qs, "", "  ")
}

// DecodeSet parses a query set from JSON.
func DecodeSet(data []byte) ([]Query, error) {
	var qs []Query
	if err := json.Unmarshal(data, &qs); err != nil {
		return nil, err
	}
	return qs, nil
}
