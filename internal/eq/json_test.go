package eq

import (
	"encoding/json"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestTermJSONRoundTrip(t *testing.T) {
	for _, tm := range []Term{V("x"), C("Zurich"), C("?odd"), C(""), C("=weird")} {
		data, err := json.Marshal(tm)
		if err != nil {
			t.Fatal(err)
		}
		var back Term
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatal(err)
		}
		if back != tm {
			t.Fatalf("round trip: %+v -> %s -> %+v", tm, data, back)
		}
	}
}

func TestTermJSONErrors(t *testing.T) {
	for _, bad := range []string{`""`, `"?"`, `"x"`, `5`} {
		var tm Term
		if err := json.Unmarshal([]byte(bad), &tm); err == nil {
			t.Errorf("decoding %s should fail", bad)
		}
	}
}

func TestAtomJSON(t *testing.T) {
	a := NewAtom("R", C("Chris"), V("x"))
	data, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"rel":"R","args":["=Chris","?x"]}`
	if string(data) != want {
		t.Fatalf("json = %s, want %s", data, want)
	}
	var back Atom
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !back.Equal(a) {
		t.Fatalf("round trip: %v", back)
	}
	if err := json.Unmarshal([]byte(`{"args":[]}`), &back); err == nil {
		t.Fatal("atom without relation must fail")
	}
}

func TestQuerySetJSONRoundTrip(t *testing.T) {
	qs := MustParseSet(`
query gwyneth {
  post: R(Chris, x)
  head: R(Gwyneth, x)
  body: Flights(x, Zurich)
}
query chris {
  head: R(Chris, y)
  body: Flights(y, Zurich)
}`)
	data, err := EncodeSet(qs)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeSet(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(qs) {
		t.Fatalf("len = %d", len(back))
	}
	for i := range qs {
		if qs[i].String() != back[i].String() || qs[i].ID != back[i].ID {
			t.Fatalf("query %d round trip:\n%s\n%s", i, qs[i], back[i])
		}
	}
	if !strings.Contains(string(data), `"=Chris"`) {
		t.Fatalf("encoding: %s", data)
	}
}

func TestDecodeSetErrors(t *testing.T) {
	if _, err := DecodeSet([]byte(`{`)); err == nil {
		t.Fatal("bad json must fail")
	}
}

// Property: the text parser, String renderer and JSON codec all agree —
// parse(text) == decode(encode(parse(text))).
func TestQuickJSONAgreesWithText(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	f := func() bool {
		q := randomQuery(rng)
		data, err := json.Marshal(q)
		if err != nil {
			return false
		}
		var back Query
		if err := json.Unmarshal(data, &back); err != nil {
			return false
		}
		return back.String() == q.String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func randomQuery(rng *rand.Rand) Query {
	term := func() Term {
		if rng.Intn(2) == 0 {
			return V(string(rune('x' + rng.Intn(3))))
		}
		return C(Value(string(rune('A' + rng.Intn(3)))))
	}
	atom := func(rel string) Atom {
		n := 1 + rng.Intn(3)
		args := make([]Term, n)
		for i := range args {
			args[i] = term()
		}
		return Atom{Rel: rel, Args: args}
	}
	q := Query{ID: "q"}
	for i := 0; i < rng.Intn(2); i++ {
		q.Post = append(q.Post, atom("R"))
	}
	q.Head = append(q.Head, atom("R"))
	for i := 0; i < rng.Intn(3); i++ {
		q.Body = append(q.Body, atom("T"))
	}
	return q
}
