package eq

import "strings"

// Format renders the query in the textual file format accepted by Parse,
// so Format and Parse are mutually inverse (up to whitespace):
//
//	query q1 {
//	  post: R(Chris, x)
//	  head: R(Gwyneth, x)
//	  body: Flights(x, Zurich)
//	}
func Format(q Query) string {
	var sb strings.Builder
	sb.WriteString("query ")
	if q.ID == "" {
		sb.WriteString("q")
	} else {
		sb.WriteString(q.ID)
	}
	sb.WriteString(" {\n")
	section := func(name string, as []Atom) {
		if len(as) == 0 {
			return
		}
		sb.WriteString("  ")
		sb.WriteString(name)
		sb.WriteString(": ")
		sb.WriteString(joinAtoms(as))
		sb.WriteString("\n")
	}
	section("post", q.Post)
	section("head", q.Head)
	section("body", q.Body)
	sb.WriteString("}\n")
	return sb.String()
}

// FormatSet renders a whole query set in the file format.
func FormatSet(qs []Query) string {
	var sb strings.Builder
	for i, q := range qs {
		if i > 0 {
			sb.WriteString("\n")
		}
		sb.WriteString(Format(q))
	}
	return sb.String()
}
