package eq

import (
	"fmt"
	"sort"
	"strings"
)

// Value is a constant from the database domain. Integers are represented
// by their decimal rendering; this keeps the engine simple without losing
// any behaviour the paper relies on (all comparisons are equality).
type Value string

// TermKind discriminates variables from constants.
type TermKind uint8

const (
	// TermConst marks a Term carrying a constant Value.
	TermConst TermKind = iota
	// TermVar marks a Term carrying a variable name.
	TermVar
)

// Term is an argument of an atom: either a constant or a variable.
type Term struct {
	Kind TermKind
	Name string // variable name when Kind==TermVar, constant value otherwise
}

// C builds a constant term.
func C(v Value) Term { return Term{Kind: TermConst, Name: string(v)} }

// V builds a variable term.
func V(name string) Term { return Term{Kind: TermVar, Name: name} }

// IsVar reports whether t is a variable.
func (t Term) IsVar() bool { return t.Kind == TermVar }

// Const returns the constant value of t; it must not be a variable.
func (t Term) Const() Value {
	if t.IsVar() {
		panic("eq: Const called on variable " + t.Name)
	}
	return Value(t.Name)
}

// String renders the term: variables as-is, constants quoted when they
// could be mistaken for a variable.
func (t Term) String() string {
	if t.IsVar() {
		return t.Name
	}
	if needsQuote(t.Name) {
		return "'" + t.Name + "'"
	}
	return t.Name
}

func needsQuote(s string) bool {
	if s == "" {
		return true
	}
	c := s[0]
	if c >= 'a' && c <= 'z' {
		return true // would lex as a variable
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_', c == '-':
		default:
			return true
		}
	}
	return false
}

// Atom is a relational atom R(t1, ..., tn).
type Atom struct {
	Rel  string
	Args []Term
}

// NewAtom builds an atom over relation rel with the given arguments.
func NewAtom(rel string, args ...Term) Atom {
	return Atom{Rel: rel, Args: args}
}

// String renders the atom in the usual R(a, b) form.
func (a Atom) String() string {
	parts := make([]string, len(a.Args))
	for i, t := range a.Args {
		parts[i] = t.String()
	}
	return a.Rel + "(" + strings.Join(parts, ", ") + ")"
}

// Clone returns a deep copy of the atom.
func (a Atom) Clone() Atom {
	args := make([]Term, len(a.Args))
	copy(args, a.Args)
	return Atom{Rel: a.Rel, Args: args}
}

// Equal reports syntactic equality of two atoms.
func (a Atom) Equal(b Atom) bool {
	if a.Rel != b.Rel || len(a.Args) != len(b.Args) {
		return false
	}
	for i := range a.Args {
		if a.Args[i] != b.Args[i] {
			return false
		}
	}
	return true
}

// Ground reports whether the atom contains no variables.
func (a Atom) Ground() bool {
	for _, t := range a.Args {
		if t.IsVar() {
			return false
		}
	}
	return true
}

// Query is an entangled query {Post} Head :- Body.
type Query struct {
	ID   string // stable identifier, e.g. the submitting user's name
	Post []Atom // postcondition atoms (answer relations)
	Head []Atom // head atoms (answer relations)
	Body []Atom // body atoms (database relations); may be empty
}

// New builds a query with the given identifier and atom lists. The slices
// are used directly (not copied).
func New(id string, post, head, body []Atom) Query {
	return Query{ID: id, Post: post, Head: head, Body: body}
}

// Clone returns a deep copy of q.
func (q Query) Clone() Query {
	cp := Query{ID: q.ID}
	cp.Post = cloneAtoms(q.Post)
	cp.Head = cloneAtoms(q.Head)
	cp.Body = cloneAtoms(q.Body)
	return cp
}

func cloneAtoms(as []Atom) []Atom {
	if as == nil {
		return nil
	}
	out := make([]Atom, len(as))
	for i, a := range as {
		out[i] = a.Clone()
	}
	return out
}

// Vars returns the query's variable names, sorted and deduplicated.
func (q Query) Vars() []string {
	seen := map[string]bool{}
	var out []string
	collect := func(as []Atom) {
		for _, a := range as {
			for _, t := range a.Args {
				if t.IsVar() && !seen[t.Name] {
					seen[t.Name] = true
					out = append(out, t.Name)
				}
			}
		}
	}
	collect(q.Post)
	collect(q.Head)
	collect(q.Body)
	sort.Strings(out)
	return out
}

// Rename returns a copy of q with every variable name prefixed, so that
// variable namespaces of distinct queries never collide. Coordination
// algorithms rename each query before unifying across queries.
func (q Query) Rename(prefix string) Query {
	cp := q.Clone()
	ren := func(as []Atom) {
		for i := range as {
			for j := range as[i].Args {
				if as[i].Args[j].IsVar() {
					as[i].Args[j].Name = prefix + as[i].Args[j].Name
				}
			}
		}
	}
	ren(cp.Post)
	ren(cp.Head)
	ren(cp.Body)
	return cp
}

// String renders the query as "{P1, P2} H1, H2 :- B1, B2".
func (q Query) String() string {
	var sb strings.Builder
	sb.WriteString("{")
	sb.WriteString(joinAtoms(q.Post))
	sb.WriteString("} ")
	sb.WriteString(joinAtoms(q.Head))
	sb.WriteString(" :- ")
	if len(q.Body) == 0 {
		sb.WriteString("true")
	} else {
		sb.WriteString(joinAtoms(q.Body))
	}
	return sb.String()
}

func joinAtoms(as []Atom) string {
	parts := make([]string, len(as))
	for i, a := range as {
		parts[i] = a.String()
	}
	return strings.Join(parts, ", ")
}

// AnswerRels returns the set of answer relation symbols (those appearing
// in postconditions or heads) of the query set.
func AnswerRels(qs []Query) map[string]bool {
	out := map[string]bool{}
	for _, q := range qs {
		for _, a := range q.Post {
			out[a.Rel] = true
		}
		for _, a := range q.Head {
			out[a.Rel] = true
		}
	}
	return out
}

// Validate checks the syntactic well-formedness conditions of entangled
// queries against a database schema given as relation name -> arity:
// every body relation must be in the schema, and no answer relation may
// collide with a schema relation. It also checks consistent arities for
// answer relations across the query set.
func Validate(qs []Query, schema map[string]int) error {
	answerArity := map[string]int{}
	for _, q := range qs {
		for _, a := range q.Body {
			ar, ok := schema[a.Rel]
			if !ok {
				return fmt.Errorf("query %s: body relation %s not in database schema", q.ID, a.Rel)
			}
			if ar != len(a.Args) {
				return fmt.Errorf("query %s: body atom %s has arity %d, schema says %d", q.ID, a, len(a.Args), ar)
			}
		}
		for _, a := range append(append([]Atom{}, q.Post...), q.Head...) {
			if _, ok := schema[a.Rel]; ok {
				return fmt.Errorf("query %s: answer relation %s collides with database schema", q.ID, a.Rel)
			}
			if ar, ok := answerArity[a.Rel]; ok {
				if ar != len(a.Args) {
					return fmt.Errorf("query %s: answer relation %s used with arities %d and %d", q.ID, a.Rel, ar, len(a.Args))
				}
			} else {
				answerArity[a.Rel] = len(a.Args)
			}
		}
	}
	return nil
}
