package eq

import (
	"strings"
	"testing"
)

func TestParseSingleQuery(t *testing.T) {
	src := `
# Gwyneth wants to fly with Chris.
query q1 {
  post: R(Chris, x)
  head: R(Gwyneth, x)
  body: Flights(x, Zurich)
}`
	q, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if q.ID != "q1" {
		t.Fatalf("ID = %q", q.ID)
	}
	if len(q.Post) != 1 || len(q.Head) != 1 || len(q.Body) != 1 {
		t.Fatalf("sections parsed wrong: %v", q)
	}
	if q.Post[0].String() != "R(Chris, x)" {
		t.Fatalf("post = %s", q.Post[0])
	}
	if q.Body[0].Args[0] != V("x") {
		t.Fatalf("x should be a variable: %v", q.Body[0])
	}
	if q.Body[0].Args[1] != C("Zurich") {
		t.Fatalf("Zurich should be a constant: %v", q.Body[0])
	}
}

func TestParseSetFlightHotel(t *testing.T) {
	// The Figure 1 query set of the paper (flight-hotel example, §2.2).
	src := `
query qC {
  post: R(G, x1)
  head: R(C, x1), Q(C, x2)
  body: F(x1, x), H(x2, x)
}
query qG {
  post: R(C, y1), Q(C, y2)
  head: R(G, y1), Q(G, y2)
  body: F(y1, P), H(y2, P)
}
query qJ {
  post: R(C, z1), R(G, z1)
  head: R(J, z1), Q(J, z2)
  body: F(z1, A), H(z2, A)
}
query qW {
  post: R(C, w1), Q(J, w2)
  head: R(W, w1), Q(W, w2)
  body: F(w1, M), H(w2, M)
}`
	qs, err := ParseSet(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 4 {
		t.Fatalf("got %d queries", len(qs))
	}
	if qs[3].ID != "qW" || len(qs[3].Post) != 2 {
		t.Fatalf("qW parsed wrong: %v", qs[3])
	}
}

func TestParseQuotedAndNumeric(t *testing.T) {
	q, err := Parse(`query q { head: R('lower case', 101, x) }`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Head[0].Args[0] != C("lower case") {
		t.Fatalf("quoted constant: %v", q.Head[0].Args[0])
	}
	if q.Head[0].Args[1] != C("101") {
		t.Fatalf("numeric constant: %v", q.Head[0].Args[1])
	}
	if q.Head[0].Args[2] != V("x") {
		t.Fatalf("variable: %v", q.Head[0].Args[2])
	}
}

func TestParseEmptySectionsAndTrue(t *testing.T) {
	q, err := Parse(`query q { post: R(A, x) head: S(B, x) body: true }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Body) != 0 {
		t.Fatalf("body should be empty: %v", q.Body)
	}
	q2, err := Parse(`query q { head: S(B, x) }`)
	if err != nil {
		t.Fatal(err)
	}
	if q2.Post != nil || q2.Body != nil {
		t.Fatalf("omitted sections should be nil: %v", q2)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"query",
		"query q",
		"query q { unknown: R(x) }",
		"query q { head: R(x }",
		"notquery q { }",
	}
	for _, src := range bad {
		if _, err := ParseSet(src); err == nil {
			t.Errorf("ParseSet(%q) should fail", src)
		}
	}
}

func TestParseAtoms(t *testing.T) {
	as, err := ParseAtoms("R(a, B), Q(c)")
	if err != nil {
		t.Fatal(err)
	}
	if len(as) != 2 || as[0].String() != "R(a, B)" || as[1].String() != "Q(c)" {
		t.Fatalf("atoms = %v", as)
	}
	if _, err := ParseAtoms("R(a) garbage("); err == nil {
		t.Fatal("trailing garbage should fail")
	}
}

func TestRoundTrip(t *testing.T) {
	// String output of a parsed query re-parses to the same thing.
	src := `query q { post: R(Chris, x) head: R(Gwyneth, x) body: Flights(x, Zurich), Hotels(y, 'nice place') }`
	q, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	rendered := "query q {\n post: " + atomsStr(q.Post) + "\n head: " + atomsStr(q.Head) + "\n body: " + atomsStr(q.Body) + "\n}"
	q2, err := Parse(rendered)
	if err != nil {
		t.Fatalf("re-parse failed: %v\n%s", err, rendered)
	}
	if q.String() != q2.String() {
		t.Fatalf("round trip mismatch:\n%s\n%s", q, q2)
	}
}

func atomsStr(as []Atom) string {
	if len(as) == 0 {
		return "true"
	}
	parts := make([]string, len(as))
	for i, a := range as {
		parts[i] = a.String()
	}
	return strings.Join(parts, ", ")
}

func TestMustParseSetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParseSet should panic on bad input")
		}
	}()
	MustParseSet("broken {")
}
