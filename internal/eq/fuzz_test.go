package eq

import (
	"encoding/json"
	"testing"
)

// FuzzParseSet checks that the parser never panics and that whatever it
// accepts survives a Format -> Parse round trip. Run with
// `go test -fuzz=FuzzParseSet ./internal/eq` for continuous fuzzing; the
// seed corpus runs under plain `go test`.
func FuzzParseSet(f *testing.F) {
	seeds := []string{
		"",
		"query q { head: R(x) }",
		"query q { post: R(A, x) head: R(B, x) body: T(x, 'two words') }",
		"query a { head: R(x) }\nquery b { head: R(y) }",
		"query q { body: true head: R(x) }",
		"# comment\nquery q { head: R(101, x) }",
		"query q { head: R(x }",
		"query q { weird: R(x) }",
		"query { }",
		"query q { head: R() }",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		qs, err := ParseSet(src)
		if err != nil {
			return
		}
		// Accepted input: the canonical rendering must re-parse to the
		// same queries.
		back, err := ParseSet(FormatSet(qs))
		if err != nil {
			t.Fatalf("Format output rejected: %v", err)
		}
		if len(back) != len(qs) {
			t.Fatalf("round trip changed query count: %d vs %d", len(back), len(qs))
		}
		for i := range qs {
			if qs[i].String() != back[i].String() {
				t.Fatalf("round trip changed query %d:\n%s\n%s", i, qs[i], back[i])
			}
		}
		// Accepted input must also survive the JSON wire format: the
		// HTTP service ships query sets as EncodeSet payloads.
		buf, err := EncodeSet(qs)
		if err != nil {
			t.Fatalf("EncodeSet: %v", err)
		}
		jback, err := DecodeSet(buf)
		if err != nil {
			t.Fatalf("DecodeSet rejected EncodeSet output: %v", err)
		}
		if len(jback) != len(qs) {
			t.Fatalf("JSON round trip changed query count: %d vs %d", len(jback), len(qs))
		}
		for i := range qs {
			if qs[i].String() != jback[i].String() {
				t.Fatalf("JSON round trip changed query %d:\n%s\n%s", i, qs[i], jback[i])
			}
		}
	})
}

// FuzzDecodeSet drives the JSON decoder with raw bytes: it must never
// panic, and whatever it accepts must survive a decode -> encode ->
// decode round trip with stable rendering — the property the HTTP wire
// format relies on for arbitrary client payloads.
func FuzzDecodeSet(f *testing.F) {
	seeds := []string{
		`[]`,
		`[{"head":[{"rel":"R","args":["=U1","?x"]}]}]`,
		`[{"id":"q","post":[{"rel":"R","args":["=U2","?y"]}],` +
			`"head":[{"rel":"R","args":["=U1","?x"]}],` +
			`"body":[{"rel":"T","args":["?x","=c0"]}]}]`,
		`[{"head":[{"rel":"","args":[]}]}]`,
		`[{"head":[{"rel":"R","args":["x"]}]}]`,
		`[{"head":[{"rel":"R","args":["?"]}]}]`,
		`not json`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		qs, err := DecodeSet(data)
		if err != nil {
			return
		}
		buf, err := EncodeSet(qs)
		if err != nil {
			t.Fatalf("EncodeSet rejected accepted set: %v", err)
		}
		back, err := DecodeSet(buf)
		if err != nil {
			t.Fatalf("DecodeSet rejected its own encoding: %v", err)
		}
		if len(back) != len(qs) {
			t.Fatalf("round trip changed query count: %d vs %d", len(back), len(qs))
		}
		for i := range qs {
			a, _ := json.Marshal(qs[i])
			b, _ := json.Marshal(back[i])
			if string(a) != string(b) {
				t.Fatalf("round trip changed query %d:\n%s\n%s", i, a, b)
			}
		}
	})
}
