package eq

import "testing"

// FuzzParseSet checks that the parser never panics and that whatever it
// accepts survives a Format -> Parse round trip. Run with
// `go test -fuzz=FuzzParseSet ./internal/eq` for continuous fuzzing; the
// seed corpus runs under plain `go test`.
func FuzzParseSet(f *testing.F) {
	seeds := []string{
		"",
		"query q { head: R(x) }",
		"query q { post: R(A, x) head: R(B, x) body: T(x, 'two words') }",
		"query a { head: R(x) }\nquery b { head: R(y) }",
		"query q { body: true head: R(x) }",
		"# comment\nquery q { head: R(101, x) }",
		"query q { head: R(x }",
		"query q { weird: R(x) }",
		"query { }",
		"query q { head: R() }",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		qs, err := ParseSet(src)
		if err != nil {
			return
		}
		// Accepted input: the canonical rendering must re-parse to the
		// same queries.
		back, err := ParseSet(FormatSet(qs))
		if err != nil {
			t.Fatalf("Format output rejected: %v", err)
		}
		if len(back) != len(qs) {
			t.Fatalf("round trip changed query count: %d vs %d", len(back), len(qs))
		}
		for i := range qs {
			if qs[i].String() != back[i].String() {
				t.Fatalf("round trip changed query %d:\n%s\n%s", i, qs[i], back[i])
			}
		}
	})
}
