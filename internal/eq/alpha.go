package eq

import "strconv"

// Normalize returns an alpha-renamed copy of q in which variables are
// numbered v0, v1, ... in order of first appearance (posts, then heads,
// then body). Two queries are alpha-equivalent — equal up to a
// consistent renaming of variables — exactly when their normal forms
// are syntactically identical, which AlphaEqual exploits. Coordination
// semantics are invariant under alpha renaming, so normalization is
// also useful for caching and deduplication.
func (q Query) Normalize() Query {
	cp := q.Clone()
	names := map[string]string{}
	ren := func(as []Atom) {
		for i := range as {
			for j := range as[i].Args {
				t := as[i].Args[j]
				if !t.IsVar() {
					continue
				}
				n, ok := names[t.Name]
				if !ok {
					n = "v" + strconv.Itoa(len(names))
					names[t.Name] = n
				}
				as[i].Args[j].Name = n
			}
		}
	}
	ren(cp.Post)
	ren(cp.Head)
	ren(cp.Body)
	return cp
}

// AlphaEqual reports whether two queries are equal up to a consistent
// renaming of variables (ignoring IDs).
func AlphaEqual(a, b Query) bool {
	na, nb := a.Normalize(), b.Normalize()
	return atomsEqual(na.Post, nb.Post) && atomsEqual(na.Head, nb.Head) && atomsEqual(na.Body, nb.Body)
}

func atomsEqual(a, b []Atom) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}
