// HTTP API walkthrough: the coordination service end to end in one
// process — a server over a loopback listener, then the typed client
// driving one batch coordination call and one streaming session. The
// program exits non-zero on any failure, so CI uses it as the service
// smoke test. Run:
//
//	go run ./examples/httpapi
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"net/http"

	"entangled/internal/client"
	"entangled/internal/coord"
	"entangled/internal/db"
	"entangled/internal/engine"
	"entangled/internal/eq"
	"entangled/internal/server"
	"entangled/internal/stream"
)

func main() {
	// Flights(fid, dest): the shared table every query grounds against.
	in := db.NewInstance()
	fl := in.CreateRelation("Flights", "fid", "dest")
	fl.Insert("f1", "Paris")
	fl.Insert("f2", "Tokyo")

	// Boot the service on a loopback listener.
	srv, err := server.New(engine.New(in, engine.Options{}), server.Options{})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: srv}
	go func() { _ = hs.Serve(ln) }()
	defer func() { _ = hs.Close(); srv.Close() }()

	c, err := client.New("http://"+ln.Addr().String(), client.Options{})
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	// user builds "name flies wherever buddy flies" (no buddy: any
	// flight will do).
	user := func(name, buddy string) eq.Query {
		q := eq.Query{
			ID:   name,
			Head: []eq.Atom{eq.NewAtom("Go", eq.C(eq.Value(name)), eq.V("d"))},
			Body: []eq.Atom{eq.NewAtom("Flights", eq.V("f"), eq.V("d"))},
		}
		if buddy != "" {
			q.Post = []eq.Atom{eq.NewAtom("Go", eq.C(eq.Value(buddy)), eq.V("e"))}
		}
		return q
	}

	// --- Batch endpoint: two independent requests in one call. ------
	resps, err := c.CoordinateBatch(ctx, []client.Request{
		{ID: "pair", Queries: []eq.Query{user("ana", "bo"), user("bo", "ana")}},
		{ID: "solo", Queries: []eq.Query{user("cy", "")}},
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range resps {
		if r.Err != nil {
			log.Fatalf("%s: %v", r.ID, r.Err)
		}
		fmt.Printf("batch %-4s -> team of %d, %d DB queries\n", r.ID, r.Result.Size(), r.Result.DBQueries)
	}

	// --- Streaming session: users join one at a time. ---------------
	sess, err := c.CreateSession(ctx, "trip", false)
	if err != nil {
		log.Fatal(err)
	}
	for _, u := range []struct{ name, buddy string }{
		{"dee", ""}, {"eli", "dee"}, {"fay", "eli"},
	} {
		up, err := sess.Join(ctx, user(u.name, u.buddy))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("join  %-4s -> team of %d (dirty=%d spliced=%d, %d DB queries)\n",
			u.name, up.TeamSize, up.Stats.Dirty, up.Stats.Reused, up.Stats.DBQueries)
	}

	// Departures strand dependants; typed errors cross the wire.
	if _, err := sess.Leave(ctx, "eli"); err != nil {
		log.Fatal(err)
	}
	st, err := sess.Status(ctx, false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("leave eli  -> %d live, team of %d (fay's postcondition stranded)\n", st.Live, st.TeamSize)
	if _, err := sess.Leave(ctx, "nobody"); err == nil {
		log.Fatal("leave of an unknown ID succeeded")
	} else {
		fmt.Printf("leave nobody -> typed error: errors.Is(err, stream.ErrUnknownID) = %v\n",
			errors.Is(err, stream.ErrUnknownID))
	}

	// The wire result matches what Definition 1 demands.
	st, err = sess.Status(ctx, false)
	if err != nil {
		log.Fatal(err)
	}
	if st.Result != nil {
		if err := coord.Verify(st.Queries, st.Result.Set, st.Result.Values, in); err != nil {
			log.Fatalf("wire witness fails Definition 1: %v", err)
		}
		fmt.Println("wire witness verifies against Definition 1")
	}
	if err := sess.Close(ctx); err != nil {
		log.Fatal(err)
	}

	// --- Operational surface. ---------------------------------------
	h, err := c.Health(ctx)
	if err != nil {
		log.Fatal(err)
	}
	m, err := c.Metrics(ctx)
	if err != nil {
		log.Fatal(err)
	}
	if m.Coordinate.Batches < 1 || m.Coordinate.Batches > m.Coordinate.Requests {
		log.Fatalf("implausible dispatch count: %d batches for %d requests", m.Coordinate.Batches, m.Coordinate.Requests)
	}
	fmt.Printf("health %s · %d coordinate requests · %d session events\n",
		h.Status, m.Coordinate.Requests, m.Sessions.Events)
}
