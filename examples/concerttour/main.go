// Concert tour: Example 2 of the paper's introduction. Coldplay fans
// scattered across the world each want to attend a concert with at
// least one friend. They cannot share flights — they coordinate on the
// flight's *destination* and *date*, with the extra requirement that a
// Coldplay concert happens at the destination the day after they land.
//
// The extra concert-join requirement lives outside the single-relation
// form of §5, so this example materialises the join up front: a Trips
// relation containing only flights whose (destination, date) pair is
// followed by a concert. That preserves the coordination behaviour —
// the algorithm still enumerates (destination, date) values and cleans
// per-value subgraphs — while keeping the declarative requirement.
//
// Run with: go run ./examples/concerttour
package main

import (
	"fmt"
	"log"
	"strconv"

	"entangled"
	"entangled/internal/consistent"
)

// concert is one stop of the tour.
type concert struct {
	city string
	day  int
}

// flight is an available flight a fan could book.
type flight struct {
	id       string
	from, to string
	day      int
	airline  string
}

func main() {
	tour := []concert{
		{"Zurich", 12}, {"Paris", 15}, {"Berlin", 19},
	}
	flights := []flight{
		{"f1", "NYC", "Zurich", 11, "Swiss"},
		{"f2", "NYC", "Paris", 14, "AirFrance"},
		{"f3", "Tokyo", "Zurich", 11, "ANA"},
		{"f4", "Tokyo", "Berlin", 18, "Lufthansa"},
		{"f5", "Sydney", "Paris", 14, "Qantas"},
		{"f6", "Sydney", "Zurich", 13, "Qantas"}, // lands too late for the Zurich show
		{"f7", "NYC", "Berlin", 18, "Delta"},
	}

	// Materialise the concert join: keep flights that land exactly one
	// day before a concert in their destination city.
	inst := entangled.NewInstance()
	trips := inst.CreateRelation("Trips", "tripId", "destination", "day", "source", "airline")
	for _, f := range flights {
		for _, c := range tour {
			if f.to == c.city && f.day+1 == c.day {
				trips.Insert(
					entangled.Value(f.id),
					entangled.Value(f.to),
					entangled.Value(strconv.Itoa(f.day)),
					entangled.Value(f.from),
					entangled.Value(f.airline),
				)
			}
		}
	}
	trips.BuildIndex(1)

	friends := inst.CreateRelation("Friends", "user", "friend")
	for _, p := range [][2]entangled.Value{
		{"Ana", "Bo"}, {"Bo", "Ana"},
		{"Bo", "Chen"}, {"Chen", "Bo"},
		{"Chen", "Dee"}, {"Dee", "Chen"},
	} {
		friends.Insert(p[0], p[1])
	}
	friends.BuildIndex(0)

	sch := entangled.ConsistentSchema{
		Table:     "Trips",
		KeyCol:    0,
		CoordCols: []int{1, 2}, // destination and date
		OwnCols:   []int{3, 4}, // source airport and airline are personal
		Friends:   "Friends",
	}

	// Ana flies from NYC; Bo from Tokyo; Chen from Sydney and insists on
	// Qantas; Dee flies from NYC and wants Zurich specifically.
	qs := []entangled.ConsistentQuery{
		{User: "Ana", Coord: prefs("", ""), Own: prefs("NYC", ""), Partners: []entangled.Partner{consistent.Friend}},
		{User: "Bo", Coord: prefs("", ""), Own: prefs("Tokyo", ""), Partners: []entangled.Partner{consistent.Friend}},
		{User: "Chen", Coord: prefs("", ""), Own: prefs("Sydney", "Qantas"), Partners: []entangled.Partner{consistent.Friend}},
		{User: "Dee", Coord: prefs("Zurich", ""), Own: prefs("NYC", ""), Partners: []entangled.Partner{consistent.Friend}},
	}

	fmt.Println("fans:")
	for _, q := range qs {
		fmt.Printf("  %-5s dest=%s date=%s from=%s airline=%s\n",
			q.User, q.Coord[0], q.Coord[1], q.Own[0], q.Own[1])
	}

	res, err := entangled.CoordinateConsistent(sch, qs, inst, consistent.Options{})
	if err != nil {
		log.Fatal(err)
	}
	if res == nil {
		fmt.Println("\nno group can make any concert together")
		return
	}
	fmt.Printf("\ncandidates (destination, date):\n")
	for _, cand := range res.Candidates {
		var names []entangled.Value
		for _, m := range cand.Members {
			names = append(names, qs[m].User)
		}
		fmt.Printf("  %s on day %s -> %v\n", cand.Value[0], cand.Value[1], names)
	}
	fmt.Printf("\nwinner: %s, flying on day %s (concert the next night)\n", res.Value[0], res.Value[1])
	for _, i := range res.Members {
		fmt.Printf("  %-5s books trip %s\n", qs[i].User, res.Keys[i])
	}
}

// prefs builds a 2-attribute preference list; empty strings mean "don't
// care".
func prefs(a, b string) []entangled.Pref {
	out := make([]entangled.Pref, 2)
	if a == "" {
		out[0] = consistent.DontCare
	} else {
		out[0] = consistent.Is(entangled.Value(a))
	}
	if b == "" {
		out[1] = consistent.DontCare
	} else {
		out[1] = consistent.Is(entangled.Value(b))
	}
	return out
}
