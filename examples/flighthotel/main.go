// Flight-hotel coordination: the running example of §2.2 and §4 of the
// paper (Figure 1). Four band members entangle flight and hotel choices:
//
//   - Chris wants to share a flight with Guy (any destination);
//   - Guy wants Paris, sharing flight and hotel with Chris;
//   - Jonny wants Athens on Chris and Guy's flight (impossible if they
//     go to Paris);
//   - Will wants Madrid on Chris's flight, staying in Jonny's hotel.
//
// The set is safe but not unique, so the Gupta et al. baseline rejects
// it while the SCC Coordination Algorithm condenses {qC, qG} into one
// strongly connected component, grounds it, then discovers that qJ and
// qW cannot join.
//
// Run with: go run ./examples/flighthotel
package main

import (
	"fmt"
	"log"

	"entangled"
	"entangled/internal/coord"
)

func main() {
	qs, err := entangled.ParseSet(`
query qC {
  post: R(G, x1)
  head: R(C, x1), Q(C, x2)
  body: F(x1, x), H(x2, x)
}
query qG {
  post: R(C, y1), Q(C, y2)
  head: R(G, y1), Q(G, y2)
  body: F(y1, Paris), H(y2, Paris)
}
query qJ {
  post: R(C, z1), R(G, z1)
  head: R(J, z1), Q(J, z2)
  body: F(z1, Athens), H(z2, Athens)
}
query qW {
  post: R(C, w1), Q(J, w2)
  head: R(W, w1), Q(W, w2)
  body: F(w1, Madrid), H(w2, Madrid)
}`)
	if err != nil {
		log.Fatal(err)
	}

	inst := entangled.NewInstance()
	f := inst.CreateRelation("F", "flightId", "destination")
	f.Insert("70", "Paris")
	f.Insert("71", "Athens")
	f.Insert("72", "Madrid")
	h := inst.CreateRelation("H", "hotelId", "location")
	h.Insert("h1", "Paris")
	h.Insert("h2", "Athens")
	h.Insert("h3", "Madrid")

	fmt.Println("the Figure 1 query set:")
	for _, q := range qs {
		fmt.Printf("  %-4s %s\n", q.ID+":", q)
	}

	// The coordination graph and its strongly connected components.
	fmt.Printf("\nsafe: %v, unique: %v\n", entangled.IsSafe(qs), entangled.IsUnique(qs))
	dag, members := coord.ComponentsOf(qs)
	fmt.Printf("strongly connected components (%d):\n", dag.N())
	for c, ms := range members {
		ids := make([]string, len(ms))
		for i, m := range ms {
			ids[i] = qs[m].ID
		}
		fmt.Printf("  component %d: %v\n", c, ids)
	}

	// The baseline cannot cope with non-unique sets.
	if _, err := coord.GuptaCoordinate(qs, inst); err != nil {
		fmt.Printf("\nGupta et al. baseline: %v\n", err)
	}

	// The SCC Coordination Algorithm finds the feasible subset.
	res, err := entangled.Coordinate(qs, inst, entangled.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nSCC algorithm: coordinating set %v with %d database queries\n",
		res.IDs(qs), res.DBQueries)
	for _, i := range res.Set {
		fmt.Printf("  %s travels: flight=%s hotel=%s\n",
			qs[i].ID, firstOf(res.Values[i], "x1", "y1"), firstOf(res.Values[i], "x2", "y2"))
	}
	if err := entangled.Verify(qs, res.Set, res.Values, inst); err != nil {
		log.Fatalf("verification failed: %v", err)
	}
	fmt.Println("\nJonny and Will stay home: Athens is not on the Paris flight,")
	fmt.Println("and Will's requirements depend on Jonny's hotel.")
}

// firstOf returns the first present variable's value.
func firstOf(vals map[string]entangled.Value, names ...string) entangled.Value {
	for _, n := range names {
		if v, ok := vals[n]; ok {
			return v
		}
	}
	return "?"
}
