// Streaming walkthrough: a scenario grows one user at a time, the
// session re-coordinates only what each arrival touches, and a
// departure strands (then a return repairs) the chain's tail. Run:
//
//	go run ./examples/streaming
package main

import (
	"fmt"
	"log"

	"entangled/internal/db"
	"entangled/internal/eq"
	"entangled/internal/stream"
)

func main() {
	// Flights(fid, dest): the table everyone grounds against.
	in := db.NewInstance()
	fl := in.CreateRelation("Flights", "fid", "dest")
	fl.Insert("f1", "Paris")
	fl.Insert("f2", "Tokyo")

	// Each user wants to fly where the previous arrival flies: a
	// backward chain, the streaming-friendly shape — an arrival only
	// ever extends the tail, so re-coordination touches one component.
	user := func(name, buddy string) eq.Query {
		q := eq.Query{
			ID:   name,
			Head: []eq.Atom{eq.NewAtom("Go", eq.C(eq.Value(name)), eq.V("d"))},
			Body: []eq.Atom{eq.NewAtom("Flights", eq.V("f"), eq.V("d"))},
		}
		if buddy != "" {
			q.Post = []eq.Atom{eq.NewAtom("Go", eq.C(eq.Value(buddy)), eq.V("e"))}
		}
		return q
	}

	s := stream.New(in, stream.Options{})
	join := func(name, buddy string) {
		up, err := s.Join(user(name, buddy))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("join %-6s team=%d dirty=%d spliced=%d dbqueries=%d\n",
			name, up.TeamSize, up.Stats.Dirty, up.Stats.Reused, up.Stats.DBQueries)
	}

	join("ana", "")
	join("bo", "ana")
	join("cy", "bo")
	join("dee", "cy")

	// Bo leaves: cy and dee posted (transitively) to him, so the suffix
	// is stranded and pruned; ana remains coordinated alone.
	up, err := s.Leave("bo")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("leave bo     team=%d (stranded users pruned)\n", up.TeamSize)

	// Bo returns: the chain re-forms, cached components splice back in.
	join("bo", "ana")

	res, err := s.Result()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("final team of %d:", res.Size())
	for _, i := range res.Set {
		q := s.Queries()[i]
		fmt.Printf(" %s->%s", q.ID, res.Values[i]["d"])
	}
	fmt.Println()
}
