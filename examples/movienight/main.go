// Movie night: the §5 example of the paper, where the query set is
// *unsafe* — each band member wants to go to a cinema with "at least one
// friend", without naming them — so the general-purpose algorithms do
// not apply. Because everyone coordinates on the same attribute (the
// cinema), the Consistent Coordination Algorithm solves it: enumerate
// candidate cinemas, restrict the pruned coordination graph to each, and
// clean away members whose requirements fail.
//
// Run with: go run ./examples/movienight
package main

import (
	"fmt"
	"log"

	"entangled"
	"entangled/internal/consistent"
)

func main() {
	inst := entangled.NewInstance()
	m := inst.CreateRelation("M", "movie_id", "cinema_name", "movie_name")
	m.Insert("m1", "Regal", "Contagion")
	m.Insert("m2", "AMC", "ProjectX")
	m.Insert("m3", "Regal", "Hugo")
	m.Insert("m4", "AMC", "Hugo")
	m.Insert("m5", "Cinemark", "Hugo")
	m.BuildIndex(1)

	c := inst.CreateRelation("C", "user", "friend")
	for _, p := range [][2]entangled.Value{
		{"Chris", "Jonny"}, {"Chris", "Guy"},
		{"Guy", "Chris"}, {"Guy", "Jonny"},
		{"Jonny", "Chris"}, {"Jonny", "Will"},
		{"Will", "Chris"}, {"Will", "Guy"},
	} {
		c.Insert(p[0], p[1])
	}
	c.BuildIndex(0)

	sch := entangled.ConsistentSchema{
		Table:     "M",
		KeyCol:    0,
		CoordCols: []int{1}, // everyone coordinates on the cinema
		OwnCols:   []int{2}, // the movie is a personal choice
		Friends:   "C",
	}
	qs := []entangled.ConsistentQuery{
		{User: "Chris", Coord: []entangled.Pref{consistent.Is("Regal")}, Own: []entangled.Pref{consistent.Is("Contagion")}, Partners: []entangled.Partner{consistent.With("Will")}},
		{User: "Guy", Coord: []entangled.Pref{consistent.Is("AMC")}, Own: []entangled.Pref{consistent.Is("ProjectX")}, Partners: []entangled.Partner{consistent.Friend}},
		{User: "Jonny", Coord: []entangled.Pref{consistent.DontCare}, Own: []entangled.Pref{consistent.Is("Hugo")}, Partners: []entangled.Partner{consistent.Friend}},
		{User: "Will", Coord: []entangled.Pref{consistent.DontCare}, Own: []entangled.Pref{consistent.Is("Hugo")}, Partners: []entangled.Partner{consistent.Friend}},
	}

	fmt.Println("requests:")
	for _, q := range qs {
		fmt.Printf("  %-6s cinema=%s movie=%s partners=%v\n", q.User, q.Coord[0], q.Own[0], describe(q.Partners))
	}

	// The entangled-query form of these requests is unsafe: the friend
	// variable in a postcondition unifies with every head.
	eqs, err := consistent.ToEntangledSet(sch, qs, inst)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nas entangled queries the set is safe: %v — §4 does not apply, §5 does\n\n", entangled.IsSafe(eqs))

	res, err := entangled.CoordinateConsistent(sch, qs, inst, consistent.Options{})
	if err != nil {
		log.Fatal(err)
	}
	if res == nil {
		fmt.Println("no coordinating set")
		return
	}
	fmt.Println("candidate cinemas and who survives cleaning:")
	for _, cand := range res.Candidates {
		names := make([]entangled.Value, len(cand.Members))
		for i, mIdx := range cand.Members {
			names[i] = qs[mIdx].User
		}
		fmt.Printf("  %-9s -> %v\n", cand.Value[0], names)
	}
	fmt.Printf("\nwinner: %s\n", res.Value[0])
	for _, i := range res.Members {
		fmt.Printf("  %-6s watches movie %s\n", qs[i].User, res.Keys[i])
	}
	fmt.Printf("(%d database queries — linear in the number of users)\n", res.DBQueries)
}

func describe(ps []entangled.Partner) []string {
	out := make([]string, len(ps))
	for i, p := range ps {
		if p.AnyFriend {
			out[i] = "any friend"
		} else {
			out[i] = string(p.Name)
		}
	}
	return out
}
