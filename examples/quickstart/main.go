// Quickstart: the §2.1 example of the paper. Gwyneth wants to be on the
// same flight to Zurich as Chris; Chris just wants any Zurich flight.
// The two entangled queries form a coordinating set exactly when a
// Zurich flight exists, and choose-1 semantics hands both of them the
// same flight number.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"entangled"
)

func main() {
	// A tiny flight database.
	inst := entangled.NewInstance()
	flights := inst.CreateRelation("Flights", "fid", "dest")
	flights.Insert("101", "Zurich")
	flights.Insert("102", "Paris")
	flights.Insert("103", "Zurich")

	// Two entangled queries in the library's textual format. Lowercase
	// identifiers are variables, everything else is a constant.
	qs, err := entangled.ParseSet(`
query gwyneth {
  post: R(Chris, x)
  head: R(Gwyneth, x)
  body: Flights(x, Zurich)
}
query chris {
  head: R(Chris, y)
  body: Flights(y, Zurich)
}`)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("queries:")
	for _, q := range qs {
		fmt.Printf("  %-8s %s\n", q.ID+":", q)
	}
	fmt.Printf("safe: %v, unique: %v (non-unique sets are fine for the SCC algorithm)\n\n",
		entangled.IsSafe(qs), entangled.IsUnique(qs))

	res, err := entangled.Coordinate(qs, inst, entangled.Options{})
	if err != nil {
		log.Fatal(err)
	}
	if res == nil {
		fmt.Println("no coordinating set — no flight to Zurich?")
		return
	}
	fmt.Printf("coordinating set: %v (%d database queries)\n", res.IDs(qs), res.DBQueries)
	for _, i := range res.Set {
		for v, val := range res.Values[i] {
			fmt.Printf("  %s: %s = %s\n", qs[i].ID, v, val)
		}
	}
	if err := entangled.Verify(qs, res.Set, res.Values, inst); err != nil {
		log.Fatalf("verification failed: %v", err)
	}
	fmt.Println("verified: both fly on the same plane.")
}
