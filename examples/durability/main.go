// Kill-and-recover walkthrough: the durable storage layer end to end
// in one process. A coordination server runs over a file-backed store
// (snapshot + write-ahead log), a streaming session admits a few
// queries, and then the process "crashes" — every file handle is
// dropped without a drain. A second server opened on the same data
// directory replays the store WAL and the session's event journal and
// carries on exactly where the first left off. The program exits
// non-zero on any failure, so CI uses it as the durability smoke test.
// Run:
//
//	go run ./examples/durability
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"

	"entangled/internal/client"
	"entangled/internal/db"
	"entangled/internal/engine"
	"entangled/internal/eq"
	"entangled/internal/persist"
	"entangled/internal/server"
)

// boot opens the data directory and serves the coordination API over
// it on a loopback listener.
func boot(dir string) (*client.Client, *persist.Backend, func(), error) {
	backend, err := persist.Open(dir, persist.Options{Sync: persist.SyncAlways})
	if err != nil {
		return nil, nil, nil, err
	}
	srv, err := server.New(engine.New(backend, engine.Options{}), server.Options{Persist: backend})
	if err != nil {
		backend.Close()
		return nil, nil, nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		srv.Close()
		backend.Close()
		return nil, nil, nil, err
	}
	hs := &http.Server{Handler: srv}
	go func() { _ = hs.Serve(ln) }()
	c, err := client.New("http://"+ln.Addr().String(), client.Options{})
	if err != nil {
		hs.Close()
		srv.Close()
		backend.Close()
		return nil, nil, nil, err
	}
	stop := func() { _ = hs.Close(); srv.Close() }
	return c, backend, stop, nil
}

func main() {
	dir, err := os.MkdirTemp("", "entangled-durability")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	ctx := context.Background()

	// First life: seed the store, admit a session, crash.
	c, backend, stop, err := boot(dir)
	if err != nil {
		log.Fatal(err)
	}
	// Flights(fid, dest) reaches disk as a journaled mutation stream:
	// with SyncAlways each Apply is fsynced before it returns.
	seed := []db.Mutation{
		db.MCreate("Flights", 1, "fid", "dest"),
		db.MInsert("Flights", "f1", "Paris"),
		db.MInsert("Flights", "f2", "Tokyo"),
		db.MIndex("Flights", 1),
	}
	if err := db.ApplyAll(backend, seed); err != nil {
		log.Fatal(err)
	}
	// user wants to fly wherever buddy flies (the paper's running
	// example); alone they take any flight.
	user := func(name, buddy string) eq.Query {
		q := eq.Query{
			ID:   name,
			Head: []eq.Atom{eq.NewAtom("Go", eq.C(eq.Value(name)), eq.V("d"))},
			Body: []eq.Atom{eq.NewAtom("Flights", eq.V("f"), eq.V("d"))},
		}
		if buddy != "" {
			q.Post = []eq.Atom{eq.NewAtom("Go", eq.C(eq.Value(buddy)), eq.V("d"))}
		}
		return q
	}
	sess, err := c.CreateSession(ctx, "trip", false)
	if err != nil {
		log.Fatal(err)
	}
	for _, q := range []eq.Query{user("alice", "bob"), user("bob", "alice")} {
		up, err := sess.Join(ctx, q)
		if err != nil {
			log.Fatal(err)
		}
		// The ack implies the event is fsynced in the session journal.
		fmt.Printf("first life: %s admitted=%v team=%d\n", q.ID, up.Admitted, up.TeamSize)
	}
	fmt.Println("crash: dropping every file handle, no drain, no final sync")
	stop()
	backend.Abort()

	// Second life: same directory, nothing else carried over.
	c2, backend2, stop2, err := boot(dir)
	if err != nil {
		log.Fatal(err)
	}
	defer func() { stop2(); backend2.Close() }()
	rec, err := c2.Recovery(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovered: %d store mutations, %d session(s) with %d event(s): %v\n",
		rec.WALFrames+rec.SnapshotFrames, rec.Sessions, rec.SessionEvents, rec.RecoveredSessions)
	if rec.Sessions != 1 || rec.SessionEvents != 2 {
		log.Fatalf("recovery lost state: %+v", rec)
	}
	st, err := c2.Session("trip").Status(ctx, false)
	if err != nil {
		log.Fatal(err)
	}
	if st.Result == nil || len(st.Result.Set) != 2 {
		log.Fatalf("recovered session did not quiesce to the team: %+v", st)
	}
	dest := st.Result.Values[0]["d"]
	fmt.Printf("second life: alice and bob still coordinated, destination %s\n", dest)
	// And the session is live, not a museum piece: carol joins it.
	up, err := c2.Session("trip").Join(ctx, user("carol", ""))
	if err != nil || !up.Admitted {
		log.Fatalf("join after recovery: admitted=%v err=%v", up.Admitted, err)
	}
	fmt.Printf("second life: carol joined the recovered session, team=%d\n", up.TeamSize)
}
