// Distributed coordserve walkthrough: three nodes booted in-process
// into one cluster — shared static membership, one consistent-hash
// ring, full-replica stores — driven exactly as three processes
// started with -cluster-peers would be. The program proves the PR 9
// contract in miniature: every node reports the same membership
// fingerprint, a ring-aware cluster:// client routes each session to
// its owner, a misrouted request at any node is forwarded one hop and
// answered byte-identically, a scattered batch merges back in request
// order with exact DBQueries, and killing one node degrades to typed
// peer_unavailable errors for that node's slice only — recovering as
// soon as the node rejoins. It exits non-zero on any failure, so CI
// uses it as the cluster smoke test. Run:
//
//	go run ./examples/cluster
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"reflect"
	"strconv"
	"time"

	"entangled/internal/api"
	"entangled/internal/client"
	"entangled/internal/cluster"
	"entangled/internal/db"
	"entangled/internal/engine"
	"entangled/internal/eq"
	"entangled/internal/server"
	"entangled/internal/workload"
)

const (
	shards = 2
	rows   = 64
)

// node is one booted cluster member.
type node struct {
	name   string
	addr   string
	router *cluster.Router
	srv    *server.Server
}

// boot starts one member on ln: its own full-replica store, its view
// of the shared membership, and a binary wire listener — the same
// wiring `coordserve -cluster-node <name> -cluster-peers ...` does.
func boot(name string, members []cluster.Node, ln net.Listener) (*node, error) {
	store := workload.NewStore(shards, rows, 0)
	placement := workload.Placement()
	if sh, ok := store.(*db.ShardedInstance); ok {
		placement = sh.HashColumns()
	}
	r, err := cluster.New(cluster.Config{Self: name, Nodes: members}, cluster.Options{
		Placement: placement,
		Dial:      func(addr string) cluster.PeerConn { return client.DialPeer(addr) },
	})
	if err != nil {
		return nil, err
	}
	srv, err := server.New(engine.New(store, engine.Options{}), server.Options{Cluster: r})
	if err != nil {
		return nil, err
	}
	go srv.ServeWire(ln)
	return &node{name: name, addr: ln.Addr().String(), router: r, srv: srv}, nil
}

func (n *node) stop() {
	n.srv.Close()
	n.router.Close()
}

func main() {
	ctx := context.Background()

	// --- Boot three members on loopback listeners. -------------------
	// The membership is static configuration: every process is started
	// with the same node list, and the ring is a pure function of it —
	// no membership protocol runs.
	var members []cluster.Node
	lns := make([]net.Listener, 3)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		lns[i] = ln
		members = append(members, cluster.Node{Name: "n" + strconv.Itoa(i+1), Addr: ln.Addr().String()})
	}
	nodes := make([]*node, 3)
	for i, m := range members {
		n, err := boot(m.Name, members, lns[i])
		if err != nil {
			log.Fatal(err)
		}
		nodes[i] = n
		defer n.stop()
	}
	v := nodes[0].router.Version()
	for _, n := range nodes[1:] {
		if n.router.Version() != v {
			log.Fatalf("membership fingerprints disagree: %s vs %s", v, n.router.Version())
		}
	}
	fmt.Printf("3 nodes up, membership %s agreed by all\n", v)

	// --- A ring-aware client routes straight to owners. --------------
	cc, err := client.New("cluster://"+nodes[0].addr, client.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer cc.Close()
	sess, err := cc.CreateSession(ctx, "", false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("auto-named session %q placed on its owner %s\n", sess.ID, nodes[0].router.Owner(sess.ID))
	if _, err := sess.Join(ctx, workload.ChainQuery(0, 0, rows)); err != nil {
		log.Fatal(err)
	}

	// --- A misrouted request forwards one hop. -----------------------
	// A plain tcp:// client knows nothing about the ring; whatever node
	// it happens to dial serves session ops by forwarding them to the
	// owner over the pooled peer connection and splicing the reply back
	// byte-for-byte. This one dials n2, while the session above lives on
	// the node that created it (n1).
	direct, err := client.New("tcp://"+nodes[1].addr, client.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer direct.Close()
	st, err := direct.Session(sess.ID).Status(ctx, false)
	if err != nil {
		log.Fatal(err)
	}
	stOwn, err := cc.Session(sess.ID).Status(ctx, false)
	if err != nil {
		log.Fatal(err)
	}
	if !reflect.DeepEqual(st, stOwn) {
		log.Fatalf("forwarded status differs from owner's:\n%+v\n%+v", st, stOwn)
	}
	m := nodes[1].router.Metrics()
	fmt.Printf("misrouted status forwarded (node n2 sent %d forward(s)), replies identical\n", m.ForwardsSent)

	// --- Scatter-gather: one batch, many owners. ---------------------
	reqs := make([]client.Request, 8)
	for i := range reqs {
		reqs[i] = client.Request{ID: "r" + strconv.Itoa(i), Queries: workload.ListQueriesAt(4, i*7%rows)}
	}
	resps, err := direct.CoordinateBatch(ctx, reqs)
	if err != nil {
		log.Fatal(err)
	}
	var dbq int64
	for _, r := range resps {
		if r.Err != nil {
			log.Fatalf("%s: %v", r.ID, r.Err)
		}
		dbq += r.Result.DBQueries
	}
	m = nodes[1].router.Metrics()
	fmt.Printf("8-request batch scattered across owners (%d sub-batches forwarded), %d DB queries total\n",
		m.ForwardsSent, dbq)

	// --- Kill one node: typed errors for its slice only. -------------
	victimName := nodes[2].name
	nodes[2].stop()
	var downIdx int
	ring := nodes[0].router.Ring()
	for i := 0; ; i++ {
		if ring.OwnerOfValue(workloadValue(i)) == victimName {
			downIdx = i
			break
		}
	}
	var upIdx int
	for i := 0; ; i++ {
		if ring.OwnerOfValue(workloadValue(i)) == nodes[0].name {
			upIdx = i
			break
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		resps, err = direct.CoordinateBatch(ctx, []client.Request{
			{ID: "down", Queries: workload.ListQueriesAt(4, downIdx)},
			{ID: "up", Queries: workload.ListQueriesAt(4, upIdx)},
		})
		if err != nil {
			log.Fatalf("batch with a dead member failed as a whole: %v", err)
		}
		if resps[1].Err != nil {
			log.Fatalf("live slice harmed by the dead member: %v", resps[1].Err)
		}
		var ce *client.Error
		if !errors.As(resps[0].Err, &ce) {
			log.Fatalf("dead slice error is untyped: %v", resps[0].Err)
		}
		if ce.Code == api.CodePeerUnavailable {
			fmt.Printf("killed %s: its slice fails typed %s (retryable, fate known), the rest is served\n",
				victimName, ce.Code)
			break
		}
		// The call in flight when the connection dropped may come back
		// ack_indeterminate once; after that the drop is observed.
		if ce.Code != api.CodeAckIndeterminate || time.Now().After(deadline) {
			log.Fatalf("dead slice error %s, want peer_unavailable", ce.Code)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// --- Rejoin on the old address: forwarding resumes. --------------
	ln, err := net.Listen("tcp", nodes[2].addr)
	if err != nil {
		log.Fatal(err)
	}
	reborn, err := boot(victimName, members, ln)
	if err != nil {
		log.Fatal(err)
	}
	defer reborn.stop()
	deadline = time.Now().Add(10 * time.Second)
	for {
		resps, err = direct.CoordinateBatch(ctx, []client.Request{{ID: "back", Queries: workload.ListQueriesAt(4, downIdx)}})
		if err == nil && resps[0].Err == nil {
			fmt.Printf("%s rejoined: its slice serves again without restarting anything else\n", victimName)
			break
		}
		if time.Now().After(deadline) {
			log.Fatalf("forwarding never recovered: %v %v", err, resps[0].Err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// workloadValue names table value i the way the canonical workload does.
func workloadValue(i int) eq.Value { return eq.Value("c" + strconv.Itoa(i)) }
