// Multi-tenant admission walkthrough: one server speaking both
// protocols with a per-tenant quota policy, two tenants driving it.
// The program proves the PR 10 contract in miniature — tenant identity
// rides the HTTP header and the binary tenant envelope, a tenant
// bursting past its token bucket gets a typed fate-known `throttled`
// rejection carrying the server's retry-after hint (errors.Is resolves
// admission.ErrThrottled across the network), client.Retry turns that
// hint into an eventual success, an in-quota tenant is never touched,
// and GET /v1/tenants shows the per-tenant ledger. It exits non-zero
// on any failure, so CI uses it as the multitenant smoke test. Run:
//
//	go run ./examples/multitenant
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"entangled/internal/admission"
	"entangled/internal/client"
	"entangled/internal/engine"
	"entangled/internal/server"
	"entangled/internal/workload"
)

func main() {
	// The canonical workload table both tenants query.
	store := workload.NewStore(1, 64, 0)

	// Policy: "burst" may sustain 2 requests/second with a bucket of 2
	// (a full refill takes 500ms, comfortably longer than the burst
	// below takes to send, so the counts are deterministic); "steady"
	// has the zero policy — unlimited, but still metered and scheduled
	// fairly.
	ctl := admission.NewController(admission.Config{Tenants: map[string]admission.Policy{
		"burst":  {Rate: 2, Burst: 2},
		"steady": {},
	}})

	// Boot ONE server on two listeners: HTTP/JSON and binary wire.
	srv, err := server.New(engine.New(store, engine.Options{}), server.Options{Admission: ctl})
	if err != nil {
		log.Fatal(err)
	}
	hln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	bln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: srv}
	go func() { _ = hs.Serve(hln) }()
	go func() { _ = srv.ServeWire(bln) }()
	defer func() { _ = hs.Close(); srv.Close() }()

	// Identity is a client option: the HTTP transport sends the
	// X-Tenant header, the binary transport wraps calls in a tenant
	// envelope. Same API either way.
	steady, err := client.New("http://"+hln.Addr().String(), client.Options{Tenant: "steady"})
	if err != nil {
		log.Fatal(err)
	}
	bursty, err := client.New("tcp://"+bln.Addr().String(), client.Options{Tenant: "burst"})
	if err != nil {
		log.Fatal(err)
	}
	defer bursty.Close()
	ctx := context.Background()

	// --- The steady tenant's batch sails through. --------------------
	batch := make([]client.Request, 8)
	for i := range batch {
		batch[i] = client.Request{ID: fmt.Sprintf("s%d", i), Queries: workload.ListQueriesAt(4, i)}
	}
	resps, err := steady.CoordinateBatch(ctx, batch)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range resps {
		if r.Err != nil {
			log.Fatalf("steady request %s throttled or failed: %v", r.ID, r.Err)
		}
	}
	fmt.Printf("steady -> %d requests served, untouched by the policy\n", len(resps))

	// --- The bursty tenant blows its bucket: typed, fate-known, -------
	// --- hinted rejections with the sentinel intact across the wire. --
	var throttled, admitted int
	var hint time.Duration
	for i := 0; i < 6; i++ {
		_, err := bursty.Coordinate(ctx, workload.ListQueriesAt(4, i))
		if err == nil {
			admitted++
			continue
		}
		if !errors.Is(err, admission.ErrThrottled) {
			log.Fatalf("burst rejection lost the sentinel: %v", err)
		}
		if !client.FateKnown(err) || !client.IsRetryable(err) {
			log.Fatalf("throttle must be fate-known and retryable: %v", err)
		}
		var ce *client.Error
		if errors.As(err, &ce) && ce.RetryAfter > 0 {
			hint = ce.RetryAfter
		}
		throttled++
	}
	if admitted != 2 || throttled != 4 || hint == 0 {
		log.Fatalf("burst of 6 -> %d admitted %d throttled (hint %v), want 2/4 with a hint", admitted, throttled, hint)
	}
	fmt.Printf("burst  -> 2 admitted, 4 throttled with retry-after %v, sentinel survives errors.Is\n", hint)

	// --- client.Retry honors the hint: sleep what the server said, ----
	// --- then the refilled bucket admits the request. -----------------
	r := client.Retry{Attempts: 6, Budget: 5 * time.Second}
	if err := r.DoFateKnown(ctx, func(ctx context.Context) error {
		_, err := bursty.Coordinate(ctx, workload.ListQueriesAt(4, 0))
		return err
	}); err != nil {
		log.Fatalf("hinted retry never got through: %v", err)
	}
	fmt.Println("retry  -> hinted backoff waited out the bucket and succeeded")

	// --- The ledger: GET /v1/tenants (HTTP surface). ------------------
	ts, err := steady.Tenants(ctx)
	if err != nil {
		log.Fatal(err)
	}
	if !ts.Enabled {
		log.Fatal("admission is configured but /v1/tenants reports disabled")
	}
	for _, t := range ts.Tenants {
		fmt.Printf("ledger -> %-6s admitted=%d throttled=%d spent=%d db-queries\n",
			t.Tenant, t.Admitted, t.Throttled, t.DBQueriesSpent)
		if t.InFlight != 0 {
			log.Fatalf("tenant %s reports %d in-flight after quiescence", t.Tenant, t.InFlight)
		}
	}
}
