// Binary wire protocol walkthrough: one server speaking both protocols
// over loopback listeners, one HTTP client and one binary client
// driving it. The program proves the PR 7 contract in miniature — the
// same batch decodes to the same answer over either protocol, typed
// errors keep their identity, and a parked arrival admitted by a
// departure reaches the binary client as a server-push notification
// (the HTTP client would have to poll). It exits non-zero on any
// failure, so CI uses it as the binary-protocol smoke test. Run:
//
//	go run ./examples/binaryproto
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"net/http"
	"reflect"
	"time"

	"entangled/internal/client"
	"entangled/internal/coord"
	"entangled/internal/db"
	"entangled/internal/engine"
	"entangled/internal/eq"
	"entangled/internal/server"
)

func main() {
	// Flights(fid, dest): the shared table every query grounds against.
	in := db.NewInstance()
	fl := in.CreateRelation("Flights", "fid", "dest")
	fl.Insert("f1", "Paris")
	fl.Insert("f2", "Tokyo")

	// Boot ONE server on two listeners: HTTP/JSON and binary wire.
	srv, err := server.New(engine.New(in, engine.Options{}), server.Options{})
	if err != nil {
		log.Fatal(err)
	}
	hln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	bln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: srv}
	go func() { _ = hs.Serve(hln) }()
	go func() { _ = srv.ServeWire(bln) }()
	defer func() { _ = hs.Close(); srv.Close() }()

	// Two clients, one API: the base URL's scheme picks the protocol.
	httpC, err := client.New("http://"+hln.Addr().String(), client.Options{})
	if err != nil {
		log.Fatal(err)
	}
	binC, err := client.New("tcp://"+bln.Addr().String(), client.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer binC.Close()
	ctx := context.Background()

	user := func(name, buddy string) eq.Query {
		q := eq.Query{
			ID:   name,
			Head: []eq.Atom{eq.NewAtom("Go", eq.C(eq.Value(name)), eq.V("d"))},
			Body: []eq.Atom{eq.NewAtom("Flights", eq.V("f"), eq.V("d"))},
		}
		if buddy != "" {
			q.Post = []eq.Atom{eq.NewAtom("Go", eq.C(eq.Value(buddy)), eq.V("e"))}
		}
		return q
	}

	// --- Same batch, both protocols, identical decoded DTOs. ---------
	batch := []client.Request{
		{ID: "pair", Queries: []eq.Query{user("ana", "bo"), user("bo", "ana")}},
		{ID: "solo", Queries: []eq.Query{user("cy", "")}},
	}
	hr, err := httpC.CoordinateBatch(ctx, batch)
	if err != nil {
		log.Fatal(err)
	}
	br, err := binC.CoordinateBatch(ctx, batch)
	if err != nil {
		log.Fatal(err)
	}
	for i := range hr {
		if !reflect.DeepEqual(hr[i].Result, br[i].Result) {
			log.Fatalf("%s: protocols disagree:\nHTTP   %+v\nbinary %+v", hr[i].ID, hr[i].Result, br[i].Result)
		}
		fmt.Printf("batch %-4s -> team of %d over HTTP and binary, identical\n",
			hr[i].ID, br[i].Result.Size())
	}

	// --- Typed errors keep their identity over the binary wire. ------
	if _, err := binC.Session("nope").Status(ctx, false); err == nil {
		log.Fatal("status of a missing session succeeded")
	} else {
		var ce *client.Error
		if !errors.As(err, &ce) || ce.Status != 404 {
			log.Fatalf("missing session error %v, want a typed 404", err)
		}
		fmt.Printf("missing session -> typed %s/%d over binary\n", ce.Code, ce.Status)
	}

	// --- Server push: a departure admits a parked arrival. -----------
	// Two queries head on user A; a later poster that fans out to both
	// parks (admitting it would be unsafe). Departing one clears the
	// conflict and the server pushes the admission to the subscriber.
	mk := func(id, u string, posts ...string) eq.Query {
		q := eq.Query{
			ID:   id,
			Head: []eq.Atom{eq.NewAtom("Go", eq.C(eq.Value(u)), eq.V("d"))},
			Body: []eq.Atom{eq.NewAtom("Flights", eq.V("f"), eq.V("d"))},
		}
		for _, p := range posts {
			q.Post = append(q.Post, eq.NewAtom("Go", eq.C(eq.Value(p)), eq.V("e")))
		}
		return q
	}
	sess, err := binC.CreateSession(ctx, "trip", true)
	if err != nil {
		log.Fatal(err)
	}
	got := make(chan client.Notification, 1)
	stop, err := sess.Subscribe(ctx, func(n client.Notification) { got <- n })
	if err != nil {
		log.Fatal(err)
	}
	defer stop()
	if _, err := sess.Join(ctx, mk("qa", "A")); err != nil {
		log.Fatal(err)
	}
	if _, err := sess.Join(ctx, mk("qa2", "A")); err != nil {
		log.Fatal(err)
	}
	up, err := sess.Join(ctx, mk("qp", "B", "A"))
	if err != nil || !up.Parked {
		log.Fatalf("poster join: update %+v err %v, want parked (the 202 analogue)", up, err)
	}
	fmt.Println("join qp -> parked (fanout conflict), subscriber waiting")
	if _, err := sess.Leave(ctx, "qa2"); err != nil {
		log.Fatal(err)
	}
	select {
	case n := <-got:
		fmt.Printf("push: session %s admitted parked query %s at seq %d\n", n.Session, n.QueryID, n.Seq)
	case <-time.After(5 * time.Second):
		log.Fatal("push never arrived")
	}

	// The pushed admission holds up against Definition 1.
	st, err := sess.Status(ctx, false)
	if err != nil {
		log.Fatal(err)
	}
	if st.Live != 2 || st.Parked != 0 {
		log.Fatalf("status %+v, want qp live after the push", st)
	}
	if st.Result != nil {
		if err := coord.Verify(st.Queries, st.Result.Set, st.Result.Values, in); err != nil {
			log.Fatalf("binary witness fails Definition 1: %v", err)
		}
	}
	fmt.Println("binary witness verifies against Definition 1")
}
