// Party planner: the online setting of §6.1. Queries arrive one at a
// time at a Youtopia-style coordination module; each arrival triggers an
// evaluation of the connected component it completes, and answered
// queries retire immediately (choose-1 semantics). This is the "future
// work" §7 scenario — continuous submission — running on the SCC
// Coordination Algorithm.
//
// Alice, Bob and Carol are picking a party. Bob wants to go where Alice
// goes; Carol wants to go where Bob goes; Alice just wants a party with
// live music. Nothing can be answered until Alice's request arrives and
// completes the chain.
//
// Run with: go run ./examples/partyplanner
package main

import (
	"fmt"
	"log"

	"entangled"
)

func main() {
	inst := entangled.NewInstance()
	parties := inst.CreateRelation("Parties", "pid", "music")
	parties.Insert("warehouse", "live")
	parties.Insert("rooftop", "dj")

	c := entangled.NewCoordinator(inst, entangled.Options{})

	submit := func(src string) {
		q, err := entangled.Parse(src)
		if err != nil {
			log.Fatal(err)
		}
		out, err := c.Submit(q)
		if err != nil {
			log.Fatal(err)
		}
		if len(out.Coordinated) == 0 {
			fmt.Printf("%s submits — waiting (%d pending)\n", q.ID, out.Pending)
			return
		}
		fmt.Printf("%s submits — coordinates %d queries:\n", q.ID, len(out.Coordinated))
		for _, cq := range out.Coordinated {
			// The head's second argument is the chosen party id.
			partyVar := cq.Head[0].Args[1].Name
			fmt.Printf("  %s goes to %s\n", cq.ID, out.Values[cq.ID][partyVar])
		}
	}

	// Bob needs Alice's answer; Carol needs Bob's. Both park.
	submit(`query bob {
	  post: R(Alice, x)
	  head: R(Bob, x)
	  body: Parties(x, m)
	}`)
	submit(`query carol {
	  post: R(Bob, y)
	  head: R(Carol, y)
	  body: Parties(y, m2)
	}`)

	// Alice completes the chain: all three coordinate on one party.
	// Note the quoting: 'live' is a constant (lowercase identifiers lex
	// as variables).
	submit(`query alice {
	  head: R(Alice, z)
	  body: Parties(z, 'live')
	}`)

	// A latecomer who wanted to join Alice is out of luck — her query
	// has been answered and retired.
	submit(`query dave {
	  post: R(Alice, w)
	  head: R(Dave, w)
	  body: Parties(w, m3)
	}`)
	fmt.Printf("pending at the end: %d (Dave keeps waiting; Alice already left)\n", len(c.Pending()))
}
