// Benchmarks regenerating the paper's evaluation (§6), one family per
// figure, plus ablation benchmarks for the design choices listed in
// DESIGN.md. Run with:
//
//	go test -bench=. -benchmem
//
// The default table for Figures 4/5 is 20,000 rows to keep `go test
// -bench` sessions short; cmd/coordbench uses the paper's full 82,168
// rows. The trends are identical because every body grounds through one
// index probe regardless of table size.
package entangled_test

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"strconv"
	"sync/atomic"
	"testing"

	"entangled/internal/consistent"
	"entangled/internal/coord"
	"entangled/internal/db"
	"entangled/internal/engine"
	"entangled/internal/eq"
	"entangled/internal/netgen"
	"entangled/internal/stream"
	"entangled/internal/workload"
)

const benchTableRows = 20000

// BenchmarkFigure4List measures the SCC Coordination Algorithm on the
// list structure: n queries, each coordinating with the next (Figure 4
// sweeps n = 10..100).
func BenchmarkFigure4List(b *testing.B) {
	inst := db.NewInstance()
	workload.UserTable(inst, benchTableRows)
	for _, n := range []int{10, 25, 50, 75, 100} {
		qs := workload.ListQueries(n, benchTableRows)
		b.Run(fmt.Sprintf("queries=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := coord.SCCCoordinate(qs, inst, coord.Options{SkipSafetyCheck: true})
				if err != nil || res.Size() != n {
					b.Fatalf("res=%v err=%v", res, err)
				}
			}
		})
	}
}

// BenchmarkFigure5ScaleFree measures the SCC Coordination Algorithm on
// Barabási–Albert coordination structures (Figure 5).
func BenchmarkFigure5ScaleFree(b *testing.B) {
	inst := db.NewInstance()
	workload.UserTable(inst, benchTableRows)
	for _, n := range []int{10, 25, 50, 75, 100} {
		rng := rand.New(rand.NewSource(int64(n)))
		qs := workload.ScaleFreeQueries(n, 2, benchTableRows, rng)
		b.Run(fmt.Sprintf("queries=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := coord.SCCCoordinate(qs, inst, coord.Options{SkipSafetyCheck: true})
				if err != nil || res == nil {
					b.Fatalf("res=%v err=%v", res, err)
				}
			}
		})
	}
}

// BenchmarkFigure6GraphProcessing measures graph construction and
// preprocessing alone on large scale-free structures (Figure 6 sweeps
// 100..1000 queries; no database work is involved).
func BenchmarkFigure6GraphProcessing(b *testing.B) {
	for _, n := range []int{100, 250, 500, 750, 1000} {
		rng := rand.New(rand.NewSource(int64(n)))
		qs := workload.ScaleFreeQueries(n, 2, 100, rng)
		b.Run(fmt.Sprintf("queries=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				st := coord.Preprocess(qs)
				if st.Components == 0 {
					b.Fatal("no components")
				}
			}
		})
	}
}

// BenchmarkFigure7Values measures the Consistent Coordination Algorithm
// against a growing number of candidate coordination values: 50
// all-wildcard queries, complete friendships, every flight unique
// (Figure 7 sweeps 100..1000 flights).
func BenchmarkFigure7Values(b *testing.B) {
	const users = 50
	sch := workload.FlightSchema()
	for _, rows := range []int{100, 250, 500, 750, 1000} {
		inst := db.NewInstance()
		workload.FlightsTable(inst, rows, rows)
		workload.CompleteFriends(inst, users)
		qs := workload.FlightQueries(users)
		b.Run(fmt.Sprintf("flights=%d", rows), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := consistent.Coordinate(sch, qs, inst, consistent.Options{})
				if err != nil || res == nil {
					b.Fatalf("res=%v err=%v", res, err)
				}
			}
		})
	}
}

// BenchmarkFigure8Queries measures the Consistent Coordination Algorithm
// against a growing number of queries over a fixed 100-value table
// (Figure 8 sweeps 10..100 users).
func BenchmarkFigure8Queries(b *testing.B) {
	sch := workload.FlightSchema()
	for _, users := range []int{10, 25, 50, 75, 100} {
		inst := db.NewInstance()
		workload.FlightsTable(inst, 100, 100)
		workload.CompleteFriends(inst, users)
		qs := workload.FlightQueries(users)
		b.Run(fmt.Sprintf("queries=%d", users), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := consistent.Coordinate(sch, qs, inst, consistent.Options{})
				if err != nil || res == nil {
					b.Fatalf("res=%v err=%v", res, err)
				}
			}
		})
	}
}

// --- Ablation benchmarks (DESIGN.md "Design choices worth ablating") ---

// BenchmarkAblationIndexes compares indexed against scan-only
// conjunctive evaluation on the Figure 4 workload.
func BenchmarkAblationIndexes(b *testing.B) {
	const n = 25
	const rows = 2000 // scans over the full table make big rows painful
	for _, indexed := range []bool{true, false} {
		inst := db.NewInstance()
		workload.UserTable(inst, rows)
		inst.UseIndexes = indexed
		qs := workload.ListQueries(n, rows)
		name := "indexed"
		if !indexed {
			name = "scan"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := coord.SCCCoordinate(qs, inst, coord.Options{SkipSafetyCheck: true}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationPruning compares the §6.1 pre-pruning step against
// processing without it, on a workload where half the bodies are
// unsatisfiable (pruning pays off by cutting whole dependency chains).
func BenchmarkAblationPruning(b *testing.B) {
	rng := rand.New(rand.NewSource(99))
	inst := db.NewInstance()
	workload.UserTable(inst, 2000)
	qs := workload.RandomSafeQueries(60, 2000, 0.1, 0.5, rng)
	for _, skip := range []bool{false, true} {
		name := "prune"
		if skip {
			name = "noprune"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := coord.SCCCoordinate(qs, inst, coord.Options{SkipPruning: skip, SkipSafetyCheck: true}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationGuptaVsSCC compares the Gupta et al. combined-query
// baseline against the SCC algorithm on inputs both can handle (safe and
// unique cycles); the SCC algorithm pays a small graph overhead.
func BenchmarkAblationGuptaVsSCC(b *testing.B) {
	inst := db.NewInstance()
	workload.UserTable(inst, benchTableRows)
	const n = 40
	// A single n-cycle: safe and unique.
	g := netgen.Cycle(n)
	qs := workload.GraphQueries(g, benchTableRows)
	b.Run("gupta", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := coord.GuptaCoordinate(qs, inst)
			if err != nil || res.Size() != n {
				b.Fatalf("res=%v err=%v", res, err)
			}
		}
	})
	b.Run("scc", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := coord.SCCCoordinate(qs, inst, coord.Options{})
			if err != nil || res.Size() != n {
				b.Fatalf("res=%v err=%v", res, err)
			}
		}
	})
}

// BenchmarkAblationCleaning compares the queue-driven cleaning phase of
// the Consistent Coordination Algorithm against repeated full sweeps.
func BenchmarkAblationCleaning(b *testing.B) {
	sch := workload.FlightSchema()
	const users = 60
	inst := db.NewInstance()
	workload.FlightsTable(inst, 200, 200)
	workload.CompleteFriends(inst, users)
	qs := workload.FlightQueries(users)
	for _, sweep := range []bool{false, true} {
		name := "queue"
		if sweep {
			name = "sweep"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := consistent.Coordinate(sch, qs, inst, consistent.Options{SweepCleaning: sweep}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Parallel-engine benchmarks (DESIGN.md "Concurrent engine") ---

// benchWorkers is the worker-count axis of the parallel families: the
// sequential baseline against the machine's parallelism.
func benchWorkers() []int {
	if n := runtime.GOMAXPROCS(0); n > 1 {
		return []int{1, n}
	}
	return []int{1, 4}
}

// BenchmarkParallelFigure4List runs the engine's component-parallel
// path on the Figure 4 list workload (n=100). The list condenses to a
// pure chain — zero component-level parallelism — so this family pins
// the acceptance floor: the engine path must not be slower than the
// sequential walk it degrades to.
func BenchmarkParallelFigure4List(b *testing.B) {
	inst := db.NewInstance()
	workload.UserTable(inst, benchTableRows)
	const n = 100
	qs := workload.ListQueries(n, benchTableRows)
	for _, w := range benchWorkers() {
		e := engine.New(inst, engine.Options{Workers: w, Coord: coord.Options{SkipSafetyCheck: true}})
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := e.Coordinate(context.Background(), qs)
				if err != nil || res.Size() != n {
					b.Fatalf("res=%v err=%v", res, err)
				}
			}
		})
	}
}

// BenchmarkParallelFigure5ScaleFree runs the component-parallel path on
// the scale-free structure, whose condensation branches and therefore
// admits real component-level concurrency.
func BenchmarkParallelFigure5ScaleFree(b *testing.B) {
	inst := db.NewInstance()
	workload.UserTable(inst, benchTableRows)
	rng := rand.New(rand.NewSource(100))
	qs := workload.ScaleFreeQueries(100, 2, benchTableRows, rng)
	for _, w := range benchWorkers() {
		e := engine.New(inst, engine.Options{Workers: w, Coord: coord.Options{SkipSafetyCheck: true}})
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := e.Coordinate(context.Background(), qs)
				if err != nil || res == nil {
					b.Fatalf("res=%v err=%v", res, err)
				}
			}
		})
	}
}

// BenchmarkParallelCoordinateMany serves a batch of independent Figure 4
// requests over one shared instance — the heavy-traffic shape. With
// GOMAXPROCS > 1 the pooled run should beat the single worker; on one
// CPU it must stay comparable.
func BenchmarkParallelCoordinateMany(b *testing.B) {
	inst := db.NewInstance()
	workload.UserTable(inst, benchTableRows)
	const batch, n = 32, 25
	reqs := make([]engine.Request, batch)
	for i := range reqs {
		reqs[i] = engine.Request{ID: fmt.Sprintf("r%d", i), Queries: workload.ListQueries(n, benchTableRows)}
	}
	for _, w := range benchWorkers() {
		e := engine.New(inst, engine.Options{Workers: w, Coord: coord.Options{SkipSafetyCheck: true}})
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, resp := range e.CoordinateMany(context.Background(), reqs) {
					if resp.Err != nil || resp.Result.Size() != n {
						b.Fatalf("resp=%+v", resp)
					}
				}
			}
		})
	}
}

// BenchmarkParallelBruteForce shards the exponential subset enumeration
// on a workload whose maximum coordinating set is small, so most of the
// time goes into refuting large buckets — the shape sharding helps.
func BenchmarkParallelBruteForce(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	inst := db.NewInstance()
	workload.UserTable(inst, 2000)
	qs := workload.RandomSafeQueries(14, 2000, 0.15, 0.4, rng)
	want, err := coord.BruteForceMax(qs, inst)
	if err != nil {
		b.Fatal(err)
	}
	for _, w := range benchWorkers() {
		e := engine.New(inst, engine.Options{Workers: w})
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				got, err := e.BruteForceMax(context.Background(), qs)
				if err != nil || got.Size() != want.Size() {
					b.Fatalf("got=%v want=%v err=%v", got, want, err)
				}
			}
		})
	}
}

// BenchmarkUnification isolates the MGU computation on a long chain —
// the pure-unification cost of the combined query at the root of the
// Figure 4 workload.
func BenchmarkUnification(b *testing.B) {
	qs := workload.ListQueries(100, 100)
	b.Run("extended-graph", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if edges := coord.ExtendedGraph(qs); len(edges) != 99 {
				b.Fatalf("edges = %d", len(edges))
			}
		}
	})
}

// BenchmarkAblationIncrementalUnify compares recomputing the combined
// MGU per component against reusing the successors' MGUs (§6.1's
// described implementation) on the worst-case chain, where reachable
// sets grow linearly.
func BenchmarkAblationIncrementalUnify(b *testing.B) {
	inst := db.NewInstance()
	workload.UserTable(inst, benchTableRows)
	qs := workload.ListQueries(100, benchTableRows)
	for _, inc := range []bool{false, true} {
		name := "recompute"
		if inc {
			name = "incremental"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := coord.SCCCoordinate(qs, inst, coord.Options{SkipSafetyCheck: true, IncrementalUnify: inc})
				if err != nil || res.Size() != 100 {
					b.Fatalf("res=%v err=%v", res, err)
				}
			}
		})
	}
}

// The BenchmarkSharded* family measures what hash-partitioning buys:
// relation-lock granularity. The win is contention relief, so it only
// materialises when goroutines actually contend — run with GOMAXPROCS
// > 1 (or `-cpu 8` to force contention on smaller machines). On one
// single-threaded proc the sharded paths should stay comparable to the
// single instance (they pay a small routing overhead per query).
//
// benchInserter abstracts tuple appends over plain and sharded T so
// the contention benchmarks share one body.
type benchInserter func(key, val eq.Value)

// shardedBenchSetup builds the Figure 4 table on k shards (k == 1
// means a plain instance) and returns the store plus an inserter into
// the same T relation the readers query — writers and readers contend
// for real.
func shardedBenchSetup(k, rows int) (db.Store, benchInserter) {
	if k <= 1 {
		inst := db.NewInstance()
		t := workload.UserTable(inst, rows)
		return inst, func(key, val eq.Value) { t.Insert(key, val) }
	}
	sh := db.NewShardedInstance(k)
	t := workload.UserTableSharded(sh, rows)
	return sh, func(key, val eq.Value) { t.Insert(key, val) }
}

// BenchmarkShardedWriteContention measures parallel write throughput
// into one relation. On a single instance every insert serialises on
// one relation mutex; at 8 shards writers spread over 8 independent
// locks.
func BenchmarkShardedWriteContention(b *testing.B) {
	for _, k := range []int{1, 8} {
		b.Run(fmt.Sprintf("shards=%d", k), func(b *testing.B) {
			_, insert := shardedBenchSetup(k, 0)
			var ctr int64
			b.RunParallel(func(pb *testing.PB) {
				i := int(atomic.AddInt64(&ctr, 1)) * 1e8
				for pb.Next() {
					i++
					insert(eq.Value("k"+strconv.Itoa(i)), eq.Value("c"+strconv.Itoa(i&511)))
				}
			})
		})
	}
}

// BenchmarkShardedMixedReadWrite is the serving-contention shape: each
// parallel worker mostly runs routed point queries against T with an
// insert into the same relation every few operations. On one instance
// each insert write-locks the whole relation and stalls every
// concurrent reader; at 8 shards it stalls only one partition's
// readers.
func BenchmarkShardedMixedReadWrite(b *testing.B) {
	const rows = 4096
	for _, k := range []int{1, 8} {
		b.Run(fmt.Sprintf("shards=%d", k), func(b *testing.B) {
			store, insert := shardedBenchSetup(k, rows)
			var ctr int64
			b.RunParallel(func(pb *testing.PB) {
				i := int(atomic.AddInt64(&ctr, 1)) * 1e8
				for pb.Next() {
					i++
					if i%8 == 0 {
						insert(eq.Value("k"+strconv.Itoa(i)), eq.Value("c"+strconv.Itoa(i&1023)))
						continue
					}
					body := []eq.Atom{eq.NewAtom("T", eq.V("x"), eq.C(eq.Value("c"+strconv.Itoa(i%rows))))}
					if _, _, err := store.Solve(body); err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}
}

// BenchmarkShardedCoordinateMany serves concurrent CoordinateMany
// batches while a background writer grows the queried table — the
// end-to-end serving shape sharding targets. Every request pins one
// table value, so at 8 shards requests route to disjoint shards and a
// write stalls at most one request's shard; with only one hardware
// thread the coordination compute dominates and the two configurations
// converge.
func BenchmarkShardedCoordinateMany(b *testing.B) {
	const batch, n = 32, 20
	for _, k := range []int{1, 8} {
		b.Run(fmt.Sprintf("shards=%d", k), func(b *testing.B) {
			store, insert := shardedBenchSetup(k, benchTableRows)
			e := engine.New(store, engine.Options{Workers: runtime.GOMAXPROCS(0), Coord: coord.Options{SkipSafetyCheck: true}})
			reqs := make([]engine.Request, batch)
			for i := range reqs {
				// Each request pins one value, so distinct requests route
				// to distinct shards.
				reqs[i] = engine.Request{ID: fmt.Sprintf("r%d", i), Queries: workload.ListQueriesAt(n, i%benchTableRows)}
			}
			// The writer is bounded per iteration (not free-running), so
			// the table grows identically for both shard counts and the
			// comparison measures lock contention, not table drift.
			const writesPerIter = 256
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				done := make(chan struct{})
				go func(base int) {
					defer close(done)
					for j := 0; j < writesPerIter; j++ {
						w := base + j
						insert(eq.Value("w"+strconv.Itoa(w)), eq.Value("c"+strconv.Itoa(w%benchTableRows)))
					}
				}(i * writesPerIter)
				for _, resp := range e.CoordinateMany(context.Background(), reqs) {
					if resp.Err != nil || resp.Result.Size() != n {
						b.Fatalf("resp=%+v", resp)
					}
				}
				<-done
			}
		})
	}
}

// The BenchmarkStream* family measures streaming sessions (PR 4): what
// incremental re-coordination costs per arrival, against the
// recompute-from-scratch baseline the batch path would pay for the same
// event. The headline metric is dbq/op — database queries per arrival,
// the paper's cost measure — which is size-independent for the delta
// path and linear in session size for full recompute.

// streamBenchSession grows a session to size live queries (chains of 16
// across size/16 scenarios) and returns it with the per-cluster next
// indices.
func streamBenchSession(b *testing.B, store db.Store, size int) (*stream.Session, []int) {
	b.Helper()
	s := stream.New(store, stream.Options{})
	clusters := (size + 15) / 16
	next := make([]int, clusters)
	for i := 0; i < size; i++ {
		c := i % clusters
		if _, err := s.Join(workload.ChainQuery(c, next[c], benchTableRows)); err != nil {
			b.Fatal(err)
		}
		next[c]++
	}
	return s, next
}

// BenchmarkStreamJoin measures one arrival onto a live session at a
// steady size: each iteration joins a new chain tail and immediately
// departs it, so the session neither grows nor shrinks. dbq/op stays
// flat as size grows — the arrival's dirty region is one component
// regardless of how many other scenarios the session holds. Sessions
// never reuse slots (each join-leave pair tombstones one), so the
// session is rebuilt outside the timer every few hundred iterations to
// keep the measurement at a steady slot count instead of drifting with
// b.N.
func BenchmarkStreamJoin(b *testing.B) {
	const rebuildEvery = 512
	for _, size := range []int{64, 256} {
		b.Run(fmt.Sprintf("size=%d", size), func(b *testing.B) {
			inst := db.NewInstance()
			workload.UserTable(inst, benchTableRows)
			s, next := streamBenchSession(b, inst, size)
			clusters := len(next)
			baseline := s.Totals().DBQueries
			var dbq int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if i > 0 && i%rebuildEvery == 0 {
					b.StopTimer()
					dbq += s.Totals().DBQueries - baseline
					s, next = streamBenchSession(b, inst, size)
					baseline = s.Totals().DBQueries
					b.StartTimer()
				}
				c := i % clusters
				q := workload.ChainQuery(c, next[c], benchTableRows)
				if _, err := s.Join(q); err != nil {
					b.Fatal(err)
				}
				if _, err := s.Leave(q.ID); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			dbq += s.Totals().DBQueries - baseline
			b.ReportMetric(float64(dbq)/float64(b.N), "dbq/op")
		})
	}
}

// BenchmarkStreamFullRecompute is the baseline the delta path replaces:
// the same arrival served by recomputing the whole session from
// scratch with batch SCCCoordinate. dbq/op is ~2x the session size
// (one satisfiability probe per query plus one grounding per
// component), where the streaming session pays a constant 2.
func BenchmarkStreamFullRecompute(b *testing.B) {
	for _, size := range []int{64, 256} {
		b.Run(fmt.Sprintf("size=%d", size), func(b *testing.B) {
			inst := db.NewInstance()
			workload.UserTable(inst, benchTableRows)
			clusters := (size + 15) / 16
			qs := make([]eq.Query, 0, size+1)
			for i := 0; i < size; i++ {
				qs = append(qs, workload.ChainQuery(i%clusters, i/clusters, benchTableRows))
			}
			// The arriving query the delta path would process.
			qs = append(qs, workload.ChainQuery(0, size/clusters, benchTableRows))
			var dbq int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := coord.SCCCoordinate(qs, inst, coord.Options{})
				if err != nil || res == nil {
					b.Fatalf("res=%v err=%v", res, err)
				}
				dbq += res.DBQueries
			}
			b.StopTimer()
			b.ReportMetric(float64(dbq)/float64(b.N), "dbq/op")
		})
	}
}

// BenchmarkStreamArrivals drains a full generated arrival sequence
// (256 events) through a fresh session, one sub-benchmark per pattern —
// the end-to-end event-loop throughput including session growth,
// departures and the pruning cascade.
func BenchmarkStreamArrivals(b *testing.B) {
	const n = 256
	for _, p := range workload.Patterns() {
		arrivals := workload.Arrivals(p, n, benchTableRows, 17)
		b.Run(fmt.Sprintf("pattern=%s", p), func(b *testing.B) {
			inst := db.NewInstance()
			workload.UserTable(inst, benchTableRows)
			var dbq int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s := stream.New(inst, stream.Options{})
				for _, a := range arrivals {
					ev := stream.Event{Kind: stream.JoinEvent, Query: a.Query}
					if a.Leave {
						ev = stream.Event{Kind: stream.LeaveEvent, ID: a.ID}
					}
					if _, err := s.Apply(ev); err != nil {
						b.Fatal(err)
					}
				}
				dbq += s.Totals().DBQueries
			}
			b.StopTimer()
			b.ReportMetric(float64(dbq)/float64(b.N*n), "dbq/event")
			b.ReportMetric(float64(n), "events/op")
		})
	}
}
