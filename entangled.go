// Package entangled is a Go implementation of entangled-query
// evaluation for data-driven social coordination, reproducing
// "The Complexity of Social Coordination" (Mamouras, Oren, Seeman, Kot,
// Gehrke; PVLDB 5(11), 2012).
//
// An entangled query {P} H :- B augments a conjunctive query (head H,
// body B) with postconditions P that reference other users' answers:
// "book me on the same flight as Chris". Evaluating a set of such
// queries means finding a coordinating set — a subset whose answers
// jointly satisfy every member's postconditions (Definition 1 of the
// paper).
//
// The package re-exports the library's stable surface:
//
//   - the query model and parser (internal/eq),
//   - the in-memory relational substrate, including hash-partitioned
//     sharded stores and exact per-request query metering
//     (internal/db),
//   - durable storage: a snapshot + write-ahead-log backend with
//     session-event journals and crash recovery (internal/persist),
//   - the concurrent serving engine with per-shard request routing
//     (internal/engine),
//   - streaming coordination sessions with incremental ingest and
//     delta re-coordination (internal/stream),
//   - the HTTP/JSON coordination service and its typed client
//     (internal/server, internal/client; wire format in internal/api),
//   - the SCC Coordination Algorithm for safe but non-unique sets (§4),
//   - the Consistent Coordination Algorithm for unsafe, A-consistent
//     sets (§5),
//   - the online coordination module (internal/system), and
//   - the hardness reductions of §3 (internal/sat) for experimentation.
//
// See README.md for a tour and examples/ for runnable programs.
package entangled

import (
	"entangled/internal/client"
	"entangled/internal/consistent"
	"entangled/internal/coord"
	"entangled/internal/db"
	"entangled/internal/engine"
	"entangled/internal/eq"
	"entangled/internal/persist"
	"entangled/internal/server"
	"entangled/internal/stream"
	"entangled/internal/system"
)

// Core model types, re-exported.
type (
	// Value is a constant from the database domain.
	Value = eq.Value
	// Term is an atom argument: a variable or a constant.
	Term = eq.Term
	// Atom is a relational atom R(t1, ..., tn).
	Atom = eq.Atom
	// Query is an entangled query {Post} Head :- Body.
	Query = eq.Query

	// Instance is an in-memory relational database.
	Instance = db.Instance
	// Relation is a named table with hash indexes.
	Relation = db.Relation
	// Tuple is a database row.
	Tuple = db.Tuple
	// Store is the conjunctive-query read surface every coordination
	// algorithm evaluates against; *Instance and *ShardedInstance both
	// implement it.
	Store = db.Store
	// ShardedInstance hash-partitions every relation across K shards
	// behind the same Store surface.
	ShardedInstance = db.ShardedInstance
	// ShardedRelation is the write handle of one hash-partitioned
	// relation.
	ShardedRelation = db.ShardedRelation
	// Meter is a per-request counting view over a Store.
	Meter = db.Meter
	// WriteStore is the mutation surface over a Store: every change is
	// a typed, replayable Mutation.
	WriteStore = db.WriteStore
	// Mutation is one replayable store change (create, insert, index).
	Mutation = db.Mutation

	// PersistBackend is the durable store: a WriteStore whose mutation
	// stream is journaled to a snapshot + write-ahead log on disk, with
	// per-session event journals for crash recovery (internal/persist).
	PersistBackend = persist.Backend
	// PersistOptions configures OpenPersist (shard count, fsync policy,
	// rotation and compaction thresholds).
	PersistOptions = persist.Options
	// SyncPolicy says when WAL appends reach stable storage.
	SyncPolicy = persist.SyncPolicy

	// Engine serves batches of coordination requests concurrently over
	// one shared Store, routing each request to the single shard its
	// bodies pin when the store is sharded.
	Engine = engine.Engine
	// EngineOptions configures NewEngine.
	EngineOptions = engine.Options
	// Request is one unit of Engine.CoordinateMany work.
	Request = engine.Request
	// Response pairs a Request's outcome with its ID; its
	// Result.DBQueries is exact per request.
	Response = engine.Response

	// Result is a coordinating set with its witnessing assignment.
	Result = coord.Result
	// Options configures Coordinate.
	Options = coord.Options

	// ConsistentQuery is one user's A-consistent coordination request
	// for the application-specific algorithm of §5.
	ConsistentQuery = consistent.Query
	// ConsistentSchema describes the coordination application: the data
	// relation, the coordination attribute set A, and the friendship
	// relation.
	ConsistentSchema = consistent.Schema
	// ConsistentResult is the §5 algorithm's output.
	ConsistentResult = consistent.Result
	// Pref is a per-attribute preference (constant or wildcard).
	Pref = consistent.Pref
	// Partner is a coordination-partner slot.
	Partner = consistent.Partner

	// Coordinator is the online coordination module of §6.1.
	Coordinator = system.Coordinator
	// Outcome reports what an online submission achieved.
	Outcome = system.Outcome

	// Session is a streaming coordination session: queries join and
	// leave one at a time with incremental re-coordination and exact
	// per-event metering.
	Session = stream.Session
	// SessionOptions configures NewSession.
	SessionOptions = stream.Options
	// SessionEvent is one streaming input (a join or a leave).
	SessionEvent = stream.Event
	// SessionUpdate reports one processed event's outcome and cost.
	SessionUpdate = stream.Update

	// Server exposes an Engine over HTTP/JSON: batch coordination,
	// named streaming sessions behind a concurrent registry, and the
	// /healthz + /metrics operational surface (internal/server).
	Server = server.Server
	// ServerOptions configures NewServer (batch caps, queue and
	// mailbox bounds, session idle timeout).
	ServerOptions = server.Options
	// Client is the typed Go client for the coordination service; its
	// errors reconstruct the in-process sentinels across the network
	// (internal/client).
	Client = client.Client
	// ClientOptions configures NewClient.
	ClientOptions = client.Options
)

// C builds a constant term.
func C(v Value) Term { return eq.C(v) }

// V builds a variable term.
func V(name string) Term { return eq.V(name) }

// NewAtom builds an atom over relation rel.
func NewAtom(rel string, args ...Term) Atom { return eq.NewAtom(rel, args...) }

// Parse parses one entangled query from the textual format of the eq
// package.
func Parse(src string) (Query, error) { return eq.Parse(src) }

// ParseSet parses a whole query set.
func ParseSet(src string) ([]Query, error) { return eq.ParseSet(src) }

// NewInstance creates an empty database instance.
func NewInstance() *Instance { return db.NewInstance() }

// NewShardedInstance creates an empty database hash-partitioned across
// k shards.
func NewShardedInstance(k int) *ShardedInstance { return db.NewShardedInstance(k) }

// NewEngine creates a concurrent serving engine over a shared store.
func NewEngine(store Store, opts EngineOptions) *Engine { return engine.New(store, opts) }

// OpenPersist opens (or creates) a durable data directory and recovers
// its store by replaying the newest snapshot and the write-ahead log.
// The returned backend is a WriteStore: serve over it directly, and
// pass it as ServerOptions.Persist so admitted session events are
// journaled and recovered too.
func OpenPersist(dir string, opts PersistOptions) (*PersistBackend, error) {
	return persist.Open(dir, opts)
}

// NewSession opens a streaming coordination session over a shared
// store: arrivals and departures re-coordinate incrementally, touching
// only the components their event dirties (see internal/stream).
func NewSession(store Store, opts SessionOptions) *Session { return stream.New(store, opts) }

// NewServer exposes an engine over HTTP/JSON. Serve the returned
// http.Handler with any http.Server and call its Close on shutdown to
// drain admitted work. The error return is session recovery failing,
// which only a server with ServerOptions.Persist can hit.
func NewServer(e *Engine, opts ServerOptions) (*Server, error) { return server.New(e, opts) }

// NewClient returns a typed client for a coordination service at
// baseURL (e.g. "http://127.0.0.1:8080").
func NewClient(baseURL string, opts ClientOptions) (*Client, error) {
	return client.New(baseURL, opts)
}

// Coordinate runs the SCC Coordination Algorithm (§4) on a safe set of
// entangled queries: it finds a coordinating set whenever one exists and
// returns the largest one among the reachable-set candidates (nil when
// none exists). The returned Result.DBQueries is exact for this run
// even when the store serves concurrent traffic.
func Coordinate(qs []Query, store Store, opts Options) (*Result, error) {
	return coord.SCCCoordinate(qs, store, opts)
}

// CoordinateConsistent runs the Consistent Coordination Algorithm (§5)
// for A-consistent query sets, which handles unsafe sets as long as all
// users coordinate on the same attributes.
func CoordinateConsistent(sch ConsistentSchema, qs []ConsistentQuery, inst *Instance, opts consistent.Options) (*ConsistentResult, error) {
	return consistent.Coordinate(sch, qs, inst, opts)
}

// Verify checks a coordinating set against Definition 1 of the paper.
func Verify(qs []Query, set []int, values map[int]map[string]Value, store Store) error {
	return coord.Verify(qs, set, values, store)
}

// IsSafe reports whether every query's postconditions have at most one
// potential provider (Definition 2).
func IsSafe(qs []Query) bool { return coord.IsSafe(qs) }

// IsUnique reports whether a safe set's coordination graph is strongly
// connected (Definition 3).
func IsUnique(qs []Query) bool { return coord.IsUnique(qs) }

// NewCoordinator creates the online coordination module over inst.
func NewCoordinator(inst *Instance, opts Options) *Coordinator {
	return system.New(inst, opts)
}

// AllCandidates exposes every coordinating set the SCC algorithm
// discovers (the family {R(q)}), largest first, for callers with
// bespoke selection criteria.
func AllCandidates(qs []Query, inst *Instance, opts Options) ([]coord.CandidateSet, error) {
	return coord.AllCandidates(qs, inst, opts)
}

// Trace re-exports the SCC algorithm's step-by-step record; pass a
// fresh &Trace{} in Options.Trace and render it with its Render method.
type Trace = coord.Trace

// Load reads a database instance previously written with
// Instance.Save.
func Load(dir string) (*Instance, error) { return db.Load(dir) }
