package entangled_test

import (
	"testing"

	"entangled"
)

// TestFacadeQuickstart exercises the re-exported API end to end the way
// the README shows it.
func TestFacadeQuickstart(t *testing.T) {
	inst := entangled.NewInstance()
	flights := inst.CreateRelation("Flights", "fid", "dest")
	flights.Insert("101", "Zurich")

	qs, err := entangled.ParseSet(`
query gwyneth {
  post: R(Chris, x)
  head: R(Gwyneth, x)
  body: Flights(x, Zurich)
}
query chris {
  head: R(Chris, y)
  body: Flights(y, Zurich)
}`)
	if err != nil {
		t.Fatal(err)
	}
	if !entangled.IsSafe(qs) {
		t.Fatal("set must be safe")
	}
	if entangled.IsUnique(qs) {
		t.Fatal("the 2-node graph with a single edge is not strongly connected, so the set is not unique — exactly the case §4 unlocks")
	}
	res, err := entangled.Coordinate(qs, inst, entangled.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Size() != 2 {
		t.Fatalf("result = %v", res)
	}
	if err := entangled.Verify(qs, res.Set, res.Values, inst); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeAtomBuilders(t *testing.T) {
	a := entangled.NewAtom("R", entangled.C("Chris"), entangled.V("x"))
	if a.String() != "R(Chris, x)" {
		t.Fatalf("atom = %s", a)
	}
}

func TestFacadeCoordinator(t *testing.T) {
	inst := entangled.NewInstance()
	fl := inst.CreateRelation("Flights", "fid", "dest")
	fl.Insert("101", "Zurich")
	c := entangled.NewCoordinator(inst, entangled.Options{})
	q, err := entangled.Parse(`query solo { head: R(Me, x) body: Flights(x, Zurich) }`)
	if err != nil {
		t.Fatal(err)
	}
	out, err := c.Submit(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Coordinated) != 1 {
		t.Fatalf("outcome = %+v", out)
	}
}

func TestFacadeAllCandidatesAndSnapshot(t *testing.T) {
	inst := entangled.NewInstance()
	fl := inst.CreateRelation("Flights", "fid", "dest")
	fl.Insert("101", "Zurich")
	qs, err := entangled.ParseSet(`
query gwyneth { post: R(Chris, x) head: R(Gwyneth, x) body: Flights(x, Zurich) }
query chris { head: R(Chris, y) body: Flights(y, Zurich) }`)
	if err != nil {
		t.Fatal(err)
	}
	cands, err := entangled.AllCandidates(qs, inst, entangled.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 2 || len(cands[0].Set) != 2 || len(cands[1].Set) != 1 {
		t.Fatalf("candidates: %v", cands)
	}
	dir := t.TempDir()
	if err := inst.Save(dir); err != nil {
		t.Fatal(err)
	}
	back, err := entangled.Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	res, err := entangled.Coordinate(qs, back, entangled.Options{})
	if err != nil || res.Size() != 2 {
		t.Fatalf("reloaded instance must behave identically: %v %v", res, err)
	}
}
