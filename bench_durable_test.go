// Benchmarks for the durable storage layer (PR 6): the WAL append
// path, recovery replay, and what journaling costs a live streaming
// session per arrival (compare BenchmarkStreamJoinDurable with
// BenchmarkStreamJoin — the delta is the price of durability at each
// fsync policy).
package entangled_test

import (
	"strconv"
	"testing"

	"entangled/internal/db"
	"entangled/internal/eq"
	"entangled/internal/persist"
	"entangled/internal/stream"
	"entangled/internal/workload"
)

// durablePolicies is the fsync axis: "never" is the raw append cost
// (OS page cache only), "always" pays one fsync per acked write.
func durablePolicies() []persist.SyncPolicy {
	return []persist.SyncPolicy{persist.SyncNever, persist.SyncAlways}
}

// BenchmarkWALAppend measures one journaled store mutation end to end:
// frame encoding, the segment write, rotation amortised in, and the
// policy's fsync.
func BenchmarkWALAppend(b *testing.B) {
	for _, policy := range durablePolicies() {
		b.Run("fsync="+policy.String(), func(b *testing.B) {
			backend, err := persist.Open(b.TempDir(), persist.Options{Sync: policy})
			if err != nil {
				b.Fatal(err)
			}
			defer backend.Close()
			if err := backend.Apply(db.MCreate("T", 1, "key", "val")); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m := db.MInsert("T", eq.Value("t"+strconv.Itoa(i)), eq.Value("c"+strconv.Itoa(i&1023)))
				if err := backend.Apply(m); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			mt := backend.Metrics()
			b.ReportMetric(float64(mt.StoreBytes)/float64(b.N), "walB/op")
		})
	}
}

// BenchmarkWALRecover measures a cold open of a populated data
// directory: scanning the store dir, replaying the snapshot and WAL
// into a fresh instance, and verifying the tail. mutations/s is the
// recovery throughput that bounds restart time.
func BenchmarkWALRecover(b *testing.B) {
	streams := []struct {
		name string
		ms   []db.Mutation
	}{
		{"uniform/rows=2000", workload.UserTableMutations(2000)},
		{"uniform/rows=20000", workload.UserTableMutations(20000)},
		// Zipf-ranked relation sizes with hot-key columns: the snapshot
		// stream is dominated by one relation, the shape real data has.
		{"skewed/rows=20000", workload.SkewedMutations(workload.SkewOptions{
			Relations: 8, MaxRows: 20000, Seed: 6,
		})},
	}
	for _, cs := range streams {
		b.Run(cs.name, func(b *testing.B) {
			dir := b.TempDir()
			backend, err := persist.Open(dir, persist.Options{Sync: persist.SyncNever})
			if err != nil {
				b.Fatal(err)
			}
			if err := db.ApplyAll(backend, cs.ms); err != nil {
				b.Fatal(err)
			}
			if err := backend.Close(); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				re, err := persist.Open(dir, persist.Options{Sync: persist.SyncNever})
				if err != nil {
					b.Fatal(err)
				}
				st := re.RecoveryStats()
				if st.WALFrames+st.SnapshotFrames != len(cs.ms) {
					b.Fatalf("recovered %d+%d frames, want %d", st.SnapshotFrames, st.WALFrames, len(cs.ms))
				}
				re.Abort() // nothing written; skip the close-time sync
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N*len(cs.ms))/b.Elapsed().Seconds(), "mutations/s")
		})
	}
}

// BenchmarkStreamJoinDurable is BenchmarkStreamJoin (size=64) with the
// session journaled the way the server journals it: every admitted
// event appended to the session's WAL before the ack. dbq/op stays the
// incremental path's constant; the ns/op delta against the in-memory
// family is the durability overhead per event at each fsync policy.
func BenchmarkStreamJoinDurable(b *testing.B) {
	const size = 64
	for _, policy := range durablePolicies() {
		b.Run("fsync="+policy.String(), func(b *testing.B) {
			backend, err := persist.Open(b.TempDir(), persist.Options{Sync: policy})
			if err != nil {
				b.Fatal(err)
			}
			defer backend.Close()
			if err := db.ApplyAll(backend, workload.UserTableMutations(benchTableRows)); err != nil {
				b.Fatal(err)
			}
			journal, err := backend.CreateSessionJournal("bench", false)
			if err != nil {
				b.Fatal(err)
			}
			s, next := streamBenchSession(b, backend, size)
			clusters := len(next)
			baseline := s.Totals().DBQueries
			var dbq int64
			const rebuildEvery = 512 // see BenchmarkStreamJoin: steady slot count
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if i > 0 && i%rebuildEvery == 0 {
					b.StopTimer()
					dbq += s.Totals().DBQueries - baseline
					s, next = streamBenchSession(b, backend, size)
					baseline = s.Totals().DBQueries
					b.StartTimer()
				}
				c := i % clusters
				q := workload.ChainQuery(c, next[c], benchTableRows)
				join := stream.Event{Kind: stream.JoinEvent, Query: q}
				if _, err := s.Apply(join); err != nil {
					b.Fatal(err)
				}
				if err := journal.Append(join); err != nil {
					b.Fatal(err)
				}
				leave := stream.Event{Kind: stream.LeaveEvent, ID: q.ID}
				if _, err := s.Apply(leave); err != nil {
					b.Fatal(err)
				}
				if err := journal.Append(leave); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			dbq += s.Totals().DBQueries - baseline
			b.ReportMetric(float64(dbq)/float64(b.N), "dbq/op")
		})
	}
}
